#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace g10 {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  G10_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double median(std::vector<double> values) {
  return percentile(std::move(values), 0.5);
}

std::vector<double> quantiles(std::vector<double> values,
                              const std::vector<double>& qs) {
  std::vector<double> out(qs.size(), 0.0);
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const double q = qs[i];
    G10_CHECK(q >= 0.0 && q <= 1.0);
    if (values.size() == 1) {
      out[i] = values.front();
      continue;
    }
    const double pos = q * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    out[i] = values[lo] * (1.0 - frac) + values[hi] * frac;
  }
  return out;
}

ConfidenceInterval wilson_interval(std::size_t successes, std::size_t trials,
                                   double z) {
  G10_CHECK_MSG(successes <= trials, "successes cannot exceed trials");
  G10_CHECK_MSG(z > 0.0, "critical value must be positive");
  if (trials == 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  ConfidenceInterval out;
  out.low = std::max(0.0, center - margin);
  out.high = std::min(1.0, center + margin);
  return out;
}

double coefficient_of_variation(const std::vector<double>& values) {
  RunningStats s;
  for (double v : values) s.add(v);
  if (s.count() == 0 || s.mean() == 0.0) return 0.0;
  return s.stddev() / s.mean();
}

double relative_l1_error(const std::vector<double>& a,
                         const std::vector<double>& b) {
  G10_CHECK_MSG(a.size() == b.size(), "series must have equal length");
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += std::fabs(a[i] - b[i]);
    den += std::fabs(b[i]);
  }
  if (den == 0.0) return num == 0.0 ? 0.0 : num;
  return num / den;
}

}  // namespace g10
