// Small string utilities used by the trace parsers and report renderers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace g10 {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string_view> split(std::string_view s, char delim);

/// split() into a caller-owned vector (cleared first). Hot parse loops
/// reuse one scratch vector instead of allocating per line.
void split_into(std::string_view s, char delim,
                std::vector<std::string_view>& out);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Joins parts with a separator.
std::string join(const std::vector<std::string>& parts,
                 std::string_view separator);

bool starts_with(std::string_view s, std::string_view prefix);

/// Strict integer / double parsing; nullopt on any trailing garbage.
std::optional<std::int64_t> parse_int(std::string_view s);
std::optional<double> parse_double(std::string_view s);

/// Formats a double with fixed precision (reporting helper).
std::string format_fixed(double value, int decimals);

/// "12.3%" style helper: value 0.123 -> "12.3%".
std::string format_percent(double fraction, int decimals = 1);

}  // namespace g10
