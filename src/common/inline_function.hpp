// Move-only callable with small-buffer optimization.
//
// The DES kernel schedules millions of short-lived callbacks whose captures
// are a handful of pointers and scalars; std::function heap-allocates most
// of them (libstdc++ inlines only up to two words). InlineFunction keeps a
// 64-byte inline buffer — enough for every callback the engines create —
// and falls back to the heap only for oversized captures, so scheduling an
// event normally touches no allocator at all.
//
// Unlike std::function it is move-only (captures need not be copyable,
// which also lets callbacks own buffers) and supports only `void()`.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace g10 {

class InlineFunction {
 public:
  static constexpr std::size_t kInlineSize = 64;

  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction>>>
  InlineFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(fn));
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  void operator()() { vtable_->invoke(buffer_); }

  explicit operator bool() const { return vtable_ != nullptr; }

  /// Replaces the held callable, constructing the new one in place (no
  /// temporary InlineFunction, no relocate).
  template <typename F>
  void assign(F&& fn) {
    reset();
    emplace(std::forward<F>(fn));
  }

  /// Destroys the held callable (and frees any heap fallback) immediately.
  void reset() {
    if (vtable_ != nullptr) {
      if (vtable_->destroy != nullptr) vtable_->destroy(buffer_);
      vtable_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    // Move-constructs into dst from src, then destroys src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);  // null for trivially destructible inline types
  };

  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static D* inline_target(void* buffer) {
    return std::launder(reinterpret_cast<D*>(buffer));
  }

  template <typename D>
  static D*& heap_target(void* buffer) {
    return *std::launder(reinterpret_cast<D**>(buffer));
  }

  template <typename D>
  static constexpr void (*inline_destroy())(void*) {
    if constexpr (std::is_trivially_destructible_v<D>) {
      return nullptr;
    } else {
      return [](void* buf) { inline_target<D>(buf)->~D(); };
    }
  }

  template <typename D>
  static const VTable* inline_vtable() {
    static constexpr VTable table = {
        [](void* buf) { (*inline_target<D>(buf))(); },
        [](void* dst, void* src) {
          ::new (dst) D(std::move(*inline_target<D>(src)));
          inline_target<D>(src)->~D();
        },
        inline_destroy<D>(),
    };
    return &table;
  }

  template <typename D>
  static const VTable* heap_vtable() {
    static constexpr VTable table = {
        [](void* buf) { (*heap_target<D>(buf))(); },
        [](void* dst, void* src) {
          ::new (dst) D*(heap_target<D>(src));
        },
        [](void* buf) { delete heap_target<D>(buf); },
    };
    return &table;
  }

  template <typename F>
  void emplace(F&& fn) {
    using D = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, D&>);
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(buffer_)) D(std::forward<F>(fn));
      vtable_ = inline_vtable<D>();
    } else {
      ::new (static_cast<void*>(buffer_)) D*(new D(std::forward<F>(fn)));
      vtable_ = heap_vtable<D>();
    }
  }

  void move_from(InlineFunction& other) noexcept {
    if (other.vtable_ != nullptr) {
      other.vtable_->relocate(buffer_, other.buffer_);
      vtable_ = other.vtable_;
      other.vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buffer_[kInlineSize];
  const VTable* vtable_ = nullptr;
};

}  // namespace g10
