// Work-stealing thread-pool executor shared by the analysis pipeline, the
// log parser, and (later) the simulated engines.
//
// Design goals, in priority order:
//  1. Determinism: parallel_for / parallel_map place every result by its
//     input index, so the output of a parallel stage is bit-identical to
//     the serial stage regardless of thread count or scheduling.
//  2. No regression at one thread: a pool with thread_count() == 1 spawns
//     no workers and runs everything inline on the caller — the serial hot
//     path pays no synchronization.
//  3. Safe nesting: a parallel_for issued from inside a pool task makes
//     progress on the calling thread alone, so stacked parallel stages
//     cannot deadlock even when every worker is busy.
//
// Each worker owns a deque protected by a small mutex; submit() distributes
// round-robin, owners pop newest-first (LIFO, cache-warm), thieves steal
// oldest-first (FIFO). The pending-task count is bounded: submit() blocks
// while the pool is `queue_capacity` tasks behind, so a runaway producer
// cannot balloon memory.
//
// Thread count resolution (resolve_threads): an explicit request wins, then
// the G10_THREADS environment variable, then std::thread::hardware_concurrency.
//
// Lock discipline is declared with the thread-safety annotations from
// common/thread_annotations.hpp and enforced at compile time under Clang
// (-Werror=thread-safety): every shared field names the mutex that guards
// it, and accessing one without holding that mutex is a build error.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace g10 {

class ThreadPool {
 public:
  struct Options {
    /// Total concurrency including the submitting thread: a pool with
    /// `threads == n` spawns n - 1 workers. 0 resolves via resolve_threads.
    std::size_t threads = 0;
    /// Bound on queued-but-not-started tasks; submit() blocks at the cap.
    std::size_t queue_capacity = 4096;
  };

  /// Default-constructed pool: auto thread count, default queue bound.
  ThreadPool() : ThreadPool(Options{}) {}
  explicit ThreadPool(Options options);
  explicit ThreadPool(std::size_t threads)
      : ThreadPool(Options{threads, 4096}) {}
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency: workers plus the caller participating in
  /// parallel_for. Always >= 1.
  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Enqueues a task for a worker thread. With no workers the task runs
  /// inline. Blocks while `queue_capacity` tasks are already pending.
  /// Tasks must not throw (wrap and capture; parallel_for does this).
  void submit(std::function<void()> task) G10_EXCLUDES(state_mutex_);

  /// Like submit(), but never blocks: returns false (dropping the task)
  /// when the queue is at capacity or the pool has no workers. Used by
  /// parallel_for, whose fan-outs complete through the caller regardless.
  bool try_submit(std::function<void()> task) G10_EXCLUDES(state_mutex_);

  /// Blocks until every submitted task has finished executing.
  void wait_idle() G10_EXCLUDES(state_mutex_);

  /// Runs body(i) for every i in [0, n), fanned out in `grain`-sized
  /// contiguous chunks. The caller participates; returns once all n
  /// iterations completed. If any body threw, rethrows the exception of
  /// the lowest-indexed failing chunk (deterministic across schedules).
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t)>& body)
      G10_EXCLUDES(state_mutex_);

  /// Resolves a requested thread count: `requested` if nonzero, else
  /// G10_THREADS (when set to a positive integer), else hardware
  /// concurrency. Never returns 0.
  static std::size_t resolve_threads(std::size_t requested);

 private:
  struct Worker {
    Mutex mutex;
    std::deque<std::function<void()>> tasks G10_GUARDED_BY(mutex);
    std::thread thread;
  };

  void worker_loop(std::size_t self) G10_EXCLUDES(state_mutex_);
  bool try_acquire(std::size_t self, std::function<void()>& out)
      G10_EXCLUDES(state_mutex_);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::size_t queue_capacity_ = 4096;

  Mutex state_mutex_;
  /// condition_variable_any waits on the annotated Mutex itself, so the
  /// guarded members below stay under one declared capability.
  std::condition_variable_any wake_cv_;   ///< workers: work available or stop
  std::condition_variable_any space_cv_;  ///< producers: queue below capacity
  std::condition_variable_any idle_cv_;   ///< wait_idle: all tasks finished
  std::size_t pending_ G10_GUARDED_BY(state_mutex_) = 0;  ///< queued, unstarted
  std::size_t unfinished_ G10_GUARDED_BY(state_mutex_) = 0;  ///< or running
  std::size_t next_worker_ G10_GUARDED_BY(state_mutex_) = 0;
  bool stop_ G10_GUARDED_BY(state_mutex_) = false;
};

/// parallel_for through an optional pool: nullptr or a single-thread pool
/// runs serially inline.
void parallel_for(ThreadPool* pool, std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t)>& body);

/// Maps f over items with results placed by index — output order (and, for
/// floating-point work, every bit of it) is independent of thread count.
/// The result type must be default-constructible and movable.
template <typename T, typename F>
auto parallel_map(ThreadPool* pool, const std::vector<T>& items, F&& f)
    -> std::vector<std::decay_t<decltype(f(items[0]))>> {
  std::vector<std::decay_t<decltype(f(items[0]))>> out(items.size());
  parallel_for(pool, items.size(), 1,
               [&](std::size_t i) { out[i] = f(items[i]); });
  return out;
}

}  // namespace g10
