// Documented process exit codes for the command-line tools, so that
// harnesses (the g10_ensemble executor, CI scripts) can classify a child's
// outcome from its status alone instead of scraping stderr.
//
//   0  success
//   1  internal error (unexpected exception; a bug, not an input problem)
//   2  bad arguments (unknown flag, missing value, invalid combination)
//   3  parse failure (unparseable --faults/--dataset spec, malformed model
//      or log file, strict-mode lint/preflight rejection)
//   4  fault abort (the fault schedule is inconsistent with the cluster —
//      e.g. it targets a machine the cluster doesn't have — or the engine
//      aborted while injected faults were active)
//   5  analysis error (inputs parsed but the characterization pipeline
//      could not produce a result)
//   6  interrupted (SIGTERM/SIGINT: in-flight work was cancelled at the
//      next stage boundary and the journal / partial trace was flushed
//      before exiting — an ensemble journal left behind is resumable, and
//      an orphaned ensemble worker whose supervisor died exits with this)
//
// Tools map their failure paths onto these; tests/tools/exit_code_test.cpp
// pins each one. Codes above 6 are reserved.
#pragma once

namespace g10 {

enum ExitCode : int {
  kExitOk = 0,
  kExitInternalError = 1,
  kExitBadArgs = 2,
  kExitParseFailure = 3,
  kExitFaultAbort = 4,
  kExitAnalysisError = 5,
  kExitInterrupted = 6,
};

}  // namespace g10
