// Minimal CSV writer — bench binaries export per-figure data series so the
// plots can be regenerated outside this repository.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace g10 {

/// Writes rows of string cells to a CSV file. Cells containing commas,
/// quotes or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens (truncates) the file; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& cells);

  /// Convenience: numeric row with fixed formatting.
  void write_row(const std::vector<double>& cells, int decimals = 6);

 private:
  std::ofstream out_;

  static std::string escape(const std::string& cell);
};

}  // namespace g10
