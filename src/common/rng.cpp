#include "common/rng.hpp"

#include <cmath>

#include "common/check.hpp"

namespace g10 {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64_next(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  G10_CHECK(bound > 0);
  // Lemire's method: multiply-shift with rejection of the biased low range.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  G10_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [lo, hi]; any draw is in range.
  if (span == 0) return static_cast<std::int64_t>(next());
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 random mantissa bits → uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_exponential(double mean) {
  G10_CHECK(mean > 0.0);
  double u = next_double();
  // Avoid log(0); next_double is in [0,1) so 1-u is in (0,1].
  return -mean * std::log1p(-u);
}

double Rng::next_normal(double mean, double stddev) {
  // Box–Muller. u1 in (0,1] to keep log finite.
  const double u1 = 1.0 - next_double();
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * 3.14159265358979323846 * u2);
}

std::uint64_t Rng::next_zipf(std::uint64_t n, double s) {
  G10_CHECK(n > 0);
  G10_CHECK(s > 0.0);
  if (n == 1) return 0;
  // Rejection-inversion sampling (Hörmann & Derflinger 1996), following the
  // Apache Commons RejectionInversionZipfSampler formulation.
  // H(x) = integral of x^-s: (x^(1-s) - 1) / (1-s), log(x) for s == 1.
  const double e = 1.0 - s;
  const auto big_h = [&](double x) {
    return e == 0.0 ? std::log(x) : (std::pow(x, e) - 1.0) / e;
  };
  const auto big_h_inv = [&](double u) {
    return e == 0.0 ? std::exp(u) : std::pow(1.0 + u * e, 1.0 / e);
  };
  const double nd = static_cast<double>(n);
  const double h_x1 = big_h(1.5) - 1.0;  // H(1.5) - h(1), h(1) = 1
  const double h_n = big_h(nd + 0.5);
  const double threshold = 2.0 - big_h_inv(big_h(2.5) - std::pow(2.0, -s));
  for (;;) {
    const double u = h_n + next_double() * (h_x1 - h_n);
    const double x = big_h_inv(u);
    double kd = std::floor(x + 0.5);
    if (kd < 1.0) kd = 1.0;
    if (kd > nd) kd = nd;
    if (kd - x <= threshold || u >= big_h(kd + 0.5) - std::pow(kd, -s)) {
      return static_cast<std::uint64_t>(kd) - 1;
    }
  }
}

Rng Rng::fork() {
  // Mix two outputs through SplitMix64 to decorrelate the child stream.
  std::uint64_t sm = next() ^ 0xA3EC647659359ACDULL;
  (void)splitmix64_next(sm);
  return Rng(sm ^ next());
}

}  // namespace g10
