// Annotated mutex primitives for Clang's thread-safety analysis.
//
// g10::Mutex wraps std::mutex and declares itself a capability, so fields
// marked G10_GUARDED_BY(mutex_) are compile-time checked under Clang
// (libstdc++'s std::mutex carries no such attributes). g10::MutexLock is
// the scoped holder. Condition waits use std::condition_variable_any
// directly on the Mutex: wait() unlocks and relocks the mutex internally,
// which matches what the analysis assumes (the capability is held on both
// sides of the call).
#pragma once

#include <mutex>

#include "common/thread_annotations.hpp"

namespace g10 {

/// A std::mutex declared as a thread-safety capability. Satisfies
/// BasicLockable, so std::condition_variable_any can wait on it directly.
class G10_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() G10_ACQUIRE() { mutex_.lock(); }
  void unlock() G10_RELEASE() { mutex_.unlock(); }
  bool try_lock() G10_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// RAII holder for a Mutex; the analysis tracks its scope as the region in
/// which the capability is held.
class G10_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) G10_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() G10_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace g10
