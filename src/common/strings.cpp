#include "common/strings.hpp"

#include <charconv>
#include <cstdio>

namespace g10 {

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  split_into(s, delim, out);
  return out;
}

void split_into(std::string_view s, char delim,
                std::vector<std::string_view>& out) {
  out.clear();
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(separator);
    out.append(parts[i]);
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::optional<std::int64_t> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string format_percent(double fraction, int decimals) {
  return format_fixed(fraction * 100.0, decimals) + "%";
}

}  // namespace g10
