// Runtime determinism oracle (DESIGN.md §14).
//
// A DetHasher folds per-phase event/state streams into incremental FNV-1a
// hashes, one running hash per phase path plus one overall hash that also
// covers stream order. Two executions of the same workload — repeated runs
// of an engine, or the analysis pipeline at different thread counts — must
// produce byte-identical streams, so their summaries must match hash for
// hash. When they do not, first_divergence() names the *first* phase path
// (in stream order) whose hash differs, turning "the logs differ somewhere"
// into "phase X diverged first".
//
// The hasher is deliberately order-sensitive per phase: folding the same
// values in a different order yields a different hash, which is exactly the
// property the determinism sweeps (`g10_run --det-check`, `g10_analyze
// --det-check`) rely on to catch unordered-container iteration and other
// scheduling-dependent output.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace g10 {

/// 64-bit FNV-1a over a byte range, continuing from `hash`.
std::uint64_t fnv1a64(std::uint64_t hash, const void* data, std::size_t size);

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;

/// Digest of one execution: a running hash per phase path in first-seen
/// order, and an overall hash covering every fold including stream order.
struct DetSummary {
  struct Entry {
    std::string path;         ///< phase path (or synthetic stream name)
    std::uint64_t hash = 0;   ///< incremental FNV-1a of this path's folds
    std::uint64_t count = 0;  ///< number of fold calls on this path
  };
  std::vector<Entry> phases;  ///< in first-fold order
  std::uint64_t overall = kFnvOffsetBasis;
  std::uint64_t total_folds = 0;
};

/// First point where two summaries disagree, in stream order.
struct DetDivergence {
  std::string path;        ///< first divergent phase path
  std::string detail;      ///< human-readable what-differed description
  std::uint64_t lhs = 0;   ///< per-path hash on the left side (0 if absent)
  std::uint64_t rhs = 0;   ///< per-path hash on the right side (0 if absent)
};

class DetHasher {
 public:
  /// Folds `size` raw bytes into the hash of `path` (and the overall hash).
  void fold(std::string_view path, const void* data, std::size_t size);

  void fold_bytes(std::string_view path, std::string_view bytes) {
    fold(path, bytes.data(), bytes.size());
  }
  void fold_u64(std::string_view path, std::uint64_t value) {
    fold(path, &value, sizeof(value));
  }
  void fold_i64(std::string_view path, std::int64_t value) {
    fold(path, &value, sizeof(value));
  }
  /// Folds the bit pattern, so -0.0 vs 0.0 and NaN payloads are detected.
  void fold_double(std::string_view path, double value) {
    fold(path, &value, sizeof(value));
  }

  /// The accumulated digest. The hasher can keep folding afterwards.
  DetSummary summary() const;

 private:
  struct PathHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  DetSummary summary_;
  // Index into summary_.phases; lookups only — the ordered view lives in
  // the vector, so iteration order of this map never reaches any output.
  std::unordered_map<std::string, std::size_t, PathHash, std::equal_to<>>
      index_;
};

/// Walks both summaries in stream order and returns the first entry whose
/// path, fold count, or hash differs (or that exists on one side only);
/// nullopt when the summaries are identical.
std::optional<DetDivergence> first_divergence(const DetSummary& lhs,
                                              const DetSummary& rhs);

}  // namespace g10
