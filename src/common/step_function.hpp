// Piecewise-constant functions of time.
//
// The simulator records ground-truth resource usage (cores in use, bytes/s on
// a NIC) as a step function: cheap to update on every scheduling event, exact
// to integrate over arbitrary windows. The monitoring substrate turns these
// into sampled traces, and Table II compares Grade10's upsampled output back
// against windowed averages of these functions.
#pragma once

#include <cstddef>
#include <vector>

#include "common/time.hpp"

namespace g10 {

/// A right-continuous step function v(t): value changes at breakpoints and
/// holds until the next one. Value before the first breakpoint is 0.
class StepFunction {
 public:
  StepFunction() = default;

  /// Adds `delta` to the function value for all t >= time. Appending in
  /// non-decreasing time order is O(1); out-of-order insertion is supported
  /// but O(n).
  void add(TimeNs time, double delta);

  /// Sets the function value to `value` for all t >= time (until the next
  /// later breakpoint, which is re-based). Must be called in non-decreasing
  /// time order relative to existing breakpoints.
  void set(TimeNs time, double value);

  /// Value at time t.
  double value_at(TimeNs t) const;

  /// Integral of v over [a, b).
  double integrate(TimeNs a, TimeNs b) const;

  /// Average value over [a, b). Zero-length windows return value_at(a).
  double average(TimeNs a, TimeNs b) const;

  /// Maximum value attained anywhere in [a, b).
  double max_over(TimeNs a, TimeNs b) const;

  /// Largest time with a breakpoint, or 0 if empty.
  TimeNs last_change() const;

  bool empty() const { return times_.empty(); }
  std::size_t breakpoint_count() const { return times_.size(); }

  /// Breakpoint access for iteration (times and post-change values).
  const std::vector<TimeNs>& times() const { return times_; }
  const std::vector<double>& values() const { return values_; }

  /// Removes consecutive breakpoints with (near-)equal values.
  void compact(double epsilon = 0.0);

  /// min(a(t) + b(t), cap) as a new step function. Used to merge engine
  /// resource usage with background noise without exceeding capacity.
  static StepFunction clamped_sum(const StepFunction& a,
                                  const StepFunction& b, double cap);

 private:
  // Parallel arrays: value on [times_[i], times_[i+1]) is values_[i].
  std::vector<TimeNs> times_;
  std::vector<double> values_;

  std::size_t index_of(TimeNs t) const;  // last breakpoint <= t, or npos
};

}  // namespace g10
