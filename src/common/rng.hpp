// Deterministic pseudo-random number generation.
//
// Every stochastic component in this repository takes an explicit 64-bit
// seed so that workloads, engine runs and experiments are reproducible
// bit-for-bit across runs and machines. We use SplitMix64 for seeding and
// xoshiro256** as the workhorse generator (fast, high quality, tiny state).
#pragma once

#include <array>
#include <cstdint>

namespace g10 {

/// SplitMix64 step: turns an arbitrary seed into well-mixed 64-bit values.
/// Advances the state in place and returns the next output.
std::uint64_t splitmix64_next(std::uint64_t& state);

/// xoshiro256** by Blackman & Vigna. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// nearly-divisionless method; unbiased.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double next_exponential(double mean);

  /// Standard normal via Box–Muller (no cached spare; stateless per call).
  double next_normal(double mean, double stddev);

  /// Zipf-distributed integer in [0, n): P(k) ∝ 1 / (k + 1)^s.
  /// Rejection-inversion sampler; exact for any s > 0, s != 1 handled too.
  std::uint64_t next_zipf(std::uint64_t n, double s);

  /// Derives an independent child generator; changing the order of
  /// next_* calls on the parent does not affect previously derived children.
  Rng fork();

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace g10
