#include "common/det_hash.hpp"

namespace g10 {

std::uint64_t fnv1a64(std::uint64_t hash, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

void DetHasher::fold(std::string_view path, const void* data,
                     std::size_t size) {
  const auto it = index_.find(path);
  DetSummary::Entry* entry;
  if (it == index_.end()) {
    index_.emplace(std::string(path), summary_.phases.size());
    summary_.phases.push_back(DetSummary::Entry{std::string(path),
                                                kFnvOffsetBasis, 0});
    entry = &summary_.phases.back();
  } else {
    entry = &summary_.phases[it->second];
  }
  entry->hash = fnv1a64(entry->hash, data, size);
  ++entry->count;
  // The overall hash covers the path too, so the same bytes folded under a
  // different path (or in a different cross-path order) still diverge.
  summary_.overall = fnv1a64(summary_.overall, path.data(), path.size());
  summary_.overall = fnv1a64(summary_.overall, data, size);
  ++summary_.total_folds;
}

DetSummary DetHasher::summary() const { return summary_; }

std::optional<DetDivergence> first_divergence(const DetSummary& lhs,
                                              const DetSummary& rhs) {
  const std::size_t common = std::min(lhs.phases.size(), rhs.phases.size());
  for (std::size_t i = 0; i < common; ++i) {
    const DetSummary::Entry& a = lhs.phases[i];
    const DetSummary::Entry& b = rhs.phases[i];
    if (a.path != b.path) {
      return DetDivergence{a.path,
                           "stream order diverged: position " +
                               std::to_string(i) + " is '" + a.path +
                               "' vs '" + b.path + "'",
                           a.hash, b.hash};
    }
    if (a.count != b.count) {
      return DetDivergence{a.path,
                           "fold count " + std::to_string(a.count) + " vs " +
                               std::to_string(b.count),
                           a.hash, b.hash};
    }
    if (a.hash != b.hash) {
      return DetDivergence{a.path, "per-phase hash differs", a.hash, b.hash};
    }
  }
  if (lhs.phases.size() != rhs.phases.size()) {
    const DetSummary& longer =
        lhs.phases.size() > rhs.phases.size() ? lhs : rhs;
    const DetSummary::Entry& extra = longer.phases[common];
    return DetDivergence{extra.path,
                         "present in only one execution",
                         lhs.phases.size() > common ? extra.hash : 0,
                         rhs.phases.size() > common ? extra.hash : 0};
  }
  if (lhs.overall != rhs.overall) {
    return DetDivergence{"", "overall stream hash differs", lhs.overall,
                         rhs.overall};
  }
  return std::nullopt;
}

}  // namespace g10
