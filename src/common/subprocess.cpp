#include "common/subprocess.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>

#include "common/check.hpp"

namespace g10 {
namespace {

ExitStatus decode_status(int raw) {
  ExitStatus status;
  if (WIFEXITED(raw)) {
    status.exited = true;
    status.code = WEXITSTATUS(raw);
  } else if (WIFSIGNALED(raw)) {
    status.signaled = true;
    status.signal_number = WTERMSIG(raw);
  }
  return status;
}

}  // namespace

std::string signal_name(int signal_number) {
  switch (signal_number) {
    case SIGHUP: return "SIGHUP";
    case SIGINT: return "SIGINT";
    case SIGQUIT: return "SIGQUIT";
    case SIGILL: return "SIGILL";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGKILL: return "SIGKILL";
    case SIGSEGV: return "SIGSEGV";
    case SIGPIPE: return "SIGPIPE";
    case SIGALRM: return "SIGALRM";
    case SIGTERM: return "SIGTERM";
    case SIGXCPU: return "SIGXCPU";
    case SIGXFSZ: return "SIGXFSZ";
    default: return "signal " + std::to_string(signal_number);
  }
}

std::string ExitStatus::describe() const {
  if (exited) return "exited with code " + std::to_string(code);
  if (signaled) return "killed by " + signal_name(signal_number);
  return "unknown status";
}

// ---------------------------------------------------------------------------
// Pipe
// ---------------------------------------------------------------------------

Pipe::Pipe() {
  int fds[2];
  G10_CHECK_MSG(::pipe2(fds, O_CLOEXEC) == 0,
                "pipe2 failed: " + std::string(std::strerror(errno)));
  read_fd_ = fds[0];
  write_fd_ = fds[1];
}

Pipe::~Pipe() {
  close_read();
  close_write();
}

Pipe::Pipe(Pipe&& other) noexcept
    : read_fd_(other.read_fd_), write_fd_(other.write_fd_) {
  other.read_fd_ = -1;
  other.write_fd_ = -1;
}

Pipe& Pipe::operator=(Pipe&& other) noexcept {
  if (this != &other) {
    close_read();
    close_write();
    read_fd_ = other.read_fd_;
    write_fd_ = other.write_fd_;
    other.read_fd_ = -1;
    other.write_fd_ = -1;
  }
  return *this;
}

int Pipe::release_read() {
  const int fd = read_fd_;
  read_fd_ = -1;
  return fd;
}

int Pipe::release_write() {
  const int fd = write_fd_;
  write_fd_ = -1;
  return fd;
}

void Pipe::close_read() {
  if (read_fd_ >= 0) ::close(read_fd_);
  read_fd_ = -1;
}

void Pipe::close_write() {
  if (write_fd_ >= 0) ::close(write_fd_);
  write_fd_ = -1;
}

// ---------------------------------------------------------------------------
// Subprocess
// ---------------------------------------------------------------------------

Subprocess Subprocess::spawn(const std::vector<std::string>& argv,
                             const SpawnOptions& options) {
  G10_CHECK_MSG(!argv.empty(), "spawn needs a command");
  // Build the exec vector before fork: only async-signal-safe calls are
  // allowed on the child side.
  std::vector<char*> child_argv;
  child_argv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    child_argv.push_back(const_cast<char*>(arg.c_str()));
  }
  child_argv.push_back(nullptr);

  const pid_t pid = ::fork();
  G10_CHECK_MSG(pid >= 0, "fork failed: " + std::string(std::strerror(errno)));

  if (pid == 0) {
    // Child: async-signal-safe territory until exec.
    if (options.new_process_group) ::setpgid(0, 0);
    if (options.limits.address_space_bytes > 0) {
      struct rlimit lim;
      lim.rlim_cur = options.limits.address_space_bytes;
      lim.rlim_max = options.limits.address_space_bytes;
      ::setrlimit(RLIMIT_AS, &lim);
    }
    if (options.limits.cpu_seconds > 0.0) {
      struct rlimit lim;
      lim.rlim_cur =
          static_cast<rlim_t>(std::ceil(options.limits.cpu_seconds));
      lim.rlim_max = lim.rlim_cur + 1;  // SIGKILL backstop past the SIGXCPU
      ::setrlimit(RLIMIT_CPU, &lim);
    }
    for (const auto& [from, to] : options.dup_fds) {
      if (::dup2(from, to) < 0) _exit(127);
    }
    ::execvp(child_argv[0], child_argv.data());
    _exit(127);  // exec failed; 127 is the conventional "command not found"
  }

  Subprocess child;
  child.pid_ = pid;
  child.own_group_ = options.new_process_group;
  // Both sides call setpgid: a kill(-pid) issued immediately after spawn
  // must not race the child's own setpgid and miss the group entirely.
  // EACCES (child already exec'd, so its setpgid won) is fine.
  if (options.new_process_group) ::setpgid(pid, pid);
  return child;
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(other.pid_), own_group_(other.own_group_),
      status_(other.status_) {
  other.pid_ = -1;
  other.status_.reset();
}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    pid_ = other.pid_;
    own_group_ = other.own_group_;
    status_ = other.status_;
    other.pid_ = -1;
    other.status_.reset();
  }
  return *this;
}

std::optional<ExitStatus> Subprocess::poll() {
  if (status_) return status_;
  if (pid_ <= 0) return std::nullopt;
  int raw = 0;
  const pid_t reaped = ::waitpid(pid_, &raw, WNOHANG);
  if (reaped == pid_) status_ = decode_status(raw);
  return status_;
}

ExitStatus Subprocess::wait() {
  if (status_) return *status_;
  G10_CHECK_MSG(pid_ > 0, "wait on an empty Subprocess");
  int raw = 0;
  pid_t reaped;
  do {
    reaped = ::waitpid(pid_, &raw, 0);
  } while (reaped < 0 && errno == EINTR);
  G10_CHECK_MSG(reaped == pid_,
                "waitpid failed: " + std::string(std::strerror(errno)));
  status_ = decode_status(raw);
  return *status_;
}

void Subprocess::kill(int sig) const {
  if (pid_ <= 0 || status_.has_value()) return;
  // Negative pid signals the whole process group: a wedged worker cannot
  // shelter grandchildren from the escalation. If the group is gone (or
  // was never formed), fall back to the leader directly.
  if (own_group_ && ::kill(-pid_, sig) == 0) return;
  ::kill(pid_, sig);
}

}  // namespace g10
