// Summary statistics helpers used by engines (imbalance diagnostics),
// the analysis pipeline, and the experiment harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace g10 {

/// Streaming mean/variance via Welford's algorithm, plus min/max.
class RunningStats {
 public:
  void add(double x);

  /// Folds another accumulator in (Chan's parallel combination); the result
  /// matches feeding both sample streams into one accumulator, up to
  /// floating-point association. Either side may be empty.
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile with linear interpolation (q in [0, 1]); copies and sorts.
/// Returns 0 for an empty input.
double percentile(std::vector<double> values, double q);

/// Median convenience wrapper.
double median(std::vector<double> values);

/// Several percentiles from one sort. Each q must be in [0, 1]; an empty
/// input yields all zeros (matching percentile()).
std::vector<double> quantiles(std::vector<double> values,
                              const std::vector<double>& qs);

/// A two-sided confidence interval, clamped to [0, 1] for proportions.
struct ConfidenceInterval {
  double low = 0.0;
  double high = 1.0;

  bool operator==(const ConfidenceInterval&) const = default;
};

/// Wilson score interval for a binomial proportion: `successes` hits out of
/// `trials`, at critical value z (1.96 ~ 95%). Well-behaved at the extremes
/// (0/n and n/n stay inside [0, 1], unlike the normal approximation).
/// With trials == 0 there is no information: returns [0, 1].
ConfidenceInterval wilson_interval(std::size_t successes, std::size_t trials,
                                   double z = 1.96);

/// Coefficient of variation (stddev / mean); 0 when the mean is 0.
double coefficient_of_variation(const std::vector<double>& values);

/// Relative L1 error between two equal-length series:
/// sum |a_i - b_i| / sum |b_i| (b is the reference). Returns 0 when the
/// reference is all-zero and a matches, otherwise the absolute L1 of a.
double relative_l1_error(const std::vector<double>& a,
                         const std::vector<double>& b);

}  // namespace g10
