// Summary statistics helpers used by engines (imbalance diagnostics),
// the analysis pipeline, and the experiment harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace g10 {

/// Streaming mean/variance via Welford's algorithm, plus min/max.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile with linear interpolation (q in [0, 1]); copies and sorts.
/// Returns 0 for an empty input.
double percentile(std::vector<double> values, double q);

/// Median convenience wrapper.
double median(std::vector<double> values);

/// Coefficient of variation (stddev / mean); 0 when the mean is 0.
double coefficient_of_variation(const std::vector<double>& values);

/// Relative L1 error between two equal-length series:
/// sum |a_i - b_i| / sum |b_i| (b is the reference). Returns 0 when the
/// reference is all-zero and a matches, otherwise the absolute L1 of a.
double relative_l1_error(const std::vector<double>& a,
                         const std::vector<double>& b);

}  // namespace g10
