#include "sim/reliable_channel.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace g10::sim {
namespace {

// Stateless uniform-[0,1) hash of (src, dst, seq, attempt): the per-attempt
// timeout jitter. Deterministic and independent of any run RNG.
double jitter01(int src, int dst, std::uint64_t seq, int attempt) {
  std::uint64_t state = 0x51f2cde3a98d164bULL;
  state += static_cast<std::uint64_t>(src + 1) * 0x9e3779b97f4a7c15ULL;
  state += static_cast<std::uint64_t>(dst + 1) * 0xbf58476d1ce4e5b9ULL;
  state += (seq + 1) * 0x94d049bb133111ebULL;
  state += static_cast<std::uint64_t>(attempt + 1) * 0xd6e8feb86659fd93ULL;
  const std::uint64_t bits = splitmix64_next(state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

TimeNs to_ns(double seconds) {
  return static_cast<TimeNs>(
      std::llround(seconds * static_cast<double>(kSecond)));
}

}  // namespace

ReliableChannel::ReliableChannel(ReliableChannelConfig config,
                                 FaultInjector* faults, int machine_count)
    : config_(config), faults_(faults), machines_(machine_count) {
  G10_CHECK_MSG(machine_count > 0, "channel needs at least one machine");
  G10_CHECK_MSG(config_.timeout_seconds > 0.0,
                "retransmit timeout must be positive");
  G10_CHECK_MSG(config_.backoff >= 1.0, "backoff base must be >= 1");
  G10_CHECK_MSG(config_.jitter >= 0.0, "timeout jitter must be >= 0");
  G10_CHECK_MSG(config_.max_attempts >= 1, "retry budget must be >= 1");
  next_seq_.assign(
      static_cast<std::size_t>(machines_) * static_cast<std::size_t>(machines_),
      0);
  dead_.assign(static_cast<std::size_t>(machines_), 0);
  stats_.assign(static_cast<std::size_t>(machines_), ChannelStats{});
}

void ReliableChannel::set_dead(int machine, bool dead) {
  G10_CHECK(machine >= 0 && machine < machines_);
  dead_[static_cast<std::size_t>(machine)] = dead ? 1 : 0;
}

bool ReliableChannel::attempt_lost(int src, int dst, TimeNs t) {
  // Deterministic failures first so no RNG is drawn for them.
  if (dead_[static_cast<std::size_t>(dst)] != 0) return true;
  if (faults_ != nullptr && faults_->partitioned(src, dst, t)) return true;
  return faults_ != nullptr && faults_->send_fails(src, t);
}

ReliableChannel::SendPlan ReliableChannel::plan_send(int src, int dst,
                                                     TimeNs now) {
  G10_CHECK(src >= 0 && src < machines_ && dst >= 0 && dst < machines_);
  G10_CHECK_MSG(src != dst, "loopback traffic bypasses the channel");
  ChannelStats& st = stats_[static_cast<std::size_t>(src)];
  SendPlan plan;
  plan.seq = next_seq_[static_cast<std::size_t>(src) *
                           static_cast<std::size_t>(machines_) +
                       static_cast<std::size_t>(dst)]++;
  ++st.sends;
  plan.wait_begin = now;
  plan.wait_end = now;

  // Absolute backstop against pathological fault schedules (chains of
  // partitions interleaved with loss windows).
  const int hard_cap = config_.max_attempts * 8;

  bool delivered = false;  // payload already applied at the receiver
  TimeNs t = now;
  for (int attempt = 0;; ++attempt) {
    plan.attempts.push_back(Attempt{t, false});
    ++st.attempts;
    bool lost = attempt_lost(src, dst, t);
    if (!lost) {
      if (delivered) {
        ++plan.duplicates;
        ++st.duplicates_dropped;
      }
      delivered = true;
      // The ack crosses dst -> src and can be lost too; the receiver keeps
      // the payload either way and dedups the retransmit that follows.
      if (faults_ == nullptr || !faults_->send_fails(dst, t)) {
        plan.complete = t;
        break;
      }
      lost = true;
    }
    plan.attempts.back().lost = true;
    ++st.losses;

    const double exponent = static_cast<double>(std::min(attempt, 16));
    const double timeout = config_.timeout_seconds *
                           std::pow(config_.backoff, exponent) *
                           (1.0 + config_.jitter *
                                      jitter01(src, dst, plan.seq, attempt));
    TimeNs next = t + to_ns(timeout);
    if (attempt + 1 >= config_.max_attempts) {
      if (dead_[static_cast<std::size_t>(dst)] != 0) {
        // A dead peer exhausts the real budget; recovery (triggered by the
        // failure detector) re-executes from a snapshot, so the payload is
        // abandoned rather than forced.
        plan.gave_up = true;
        plan.complete = next;
        break;
      }
      if (attempt + 1 < hard_cap && faults_ != nullptr &&
          faults_->partitioned(src, dst, next)) {
        // Ride the partition out: hold the transfer open and retransmit
        // as soon as the link heals.
        next = faults_->partition_heal_time(src, dst, next);
      } else {
        // Plain loss exhausted the budget: force the payload through on a
        // final attempt (the transport's reliable slow path), keeping
        // algorithm output independent of the loss schedule.
        plan.attempts.push_back(Attempt{next, false});
        ++st.attempts;
        ++st.forced;
        if (delivered) {
          ++plan.duplicates;
          ++st.duplicates_dropped;
        }
        plan.complete = next;
        break;
      }
    }
    t = next;
  }

  if (plan.attempts.size() > 1) {
    plan.wait_end = plan.complete;
    st.backoff_wait += plan.wait_end - plan.wait_begin;
  }
  return plan;
}

}  // namespace g10::sim
