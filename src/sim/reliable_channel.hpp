// Reliable at-least-once messaging over the fluid-queue NIC model.
//
// The engines' data planes deliver message *payloads* logically (the
// simulated algorithms exchange values in-memory); what the channel adds is
// the reliability layer's timing and cost: per-(src,dst) sequence numbers,
// positive acks, retransmission on loss with exponential backoff and
// deterministic jitter, a bounded retry budget, and receiver-side dedup so
// retransmitted payloads apply effectively once. A send is *planned*
// synchronously against the fault injector: the plan lists every
// transmission attempt (each costs the payload bytes on the sender's NIC
// queue — retransmits are not free), the contiguous backoff wait the sender
// blocks through (engines emit it as a `Retry` blocking event at the time
// the wait completes, so a crash mid-wait never leaves a dangling block),
// and the completion time at which the sender holds the ack.
//
// Determinism: with no fault events the channel plans every send as a
// single immediate attempt with no wait and consumes no RNG, so attaching
// an empty FaultSpec leaves the host run byte-identical. Loss draws
// delegate to FaultInjector::send_fails, which draws only inside active
// loss windows.
//
// Partitions and dead peers fail attempts deterministically (no RNG).
// When the retry budget runs out while the link is partitioned, the sender
// holds the transfer open and retransmits once the partition heals — the
// extra wait is part of the plan, so `part:` windows are ridden out rather
// than surfaced as errors. Against a peer marked dead the budget is real:
// the plan ends unacked with `gave_up` set and the caller moves on (the
// failure detector will fire recovery and the step is re-executed from a
// snapshot, so the lost payload cannot corrupt the output). When the
// budget runs out on plain loss the transfer is forced through on one
// final attempt (modeling the transport escalating to a reliable slow
// path), which keeps algorithm output independent of loss schedules.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "sim/fault_injector.hpp"

namespace g10::sim {

struct ReliableChannelConfig {
  double timeout_seconds = 0.02;  ///< first retransmit timeout
  double backoff = 2.0;           ///< exponential backoff base
  double jitter = 0.25;           ///< deterministic timeout jitter fraction
  int max_attempts = 4;           ///< transmissions before the budget ends
};

/// Per-sender counters, for tests and reports.
struct ChannelStats {
  std::int64_t sends = 0;      ///< logical sends initiated
  std::int64_t attempts = 0;   ///< transmissions including retransmits
  std::int64_t losses = 0;     ///< attempts lost (loss window, partition,
                               ///< dead peer)
  std::int64_t duplicates_dropped = 0;  ///< receiver-side dedups (lost acks)
  std::int64_t forced = 0;     ///< budget-exhausted forced deliveries
  TimeNs backoff_wait = 0;     ///< total sender wait time
};

class ReliableChannel {
 public:
  struct Attempt {
    TimeNs at = 0;     ///< transmission instant (enqueue on the src NIC)
    bool lost = false; ///< data or ack lost; a retransmit follows
  };

  /// The resolved timing of one logical send.
  struct SendPlan {
    std::vector<Attempt> attempts;  ///< at least one; ordered by time
    TimeNs wait_begin = 0;  ///< backoff wait interval; empty when
    TimeNs wait_end = 0;    ///< wait_end == wait_begin (first-try ack)
    TimeNs complete = 0;    ///< sender holds the ack (or gives up)
    std::uint64_t seq = 0;  ///< per-(src,dst) sequence number
    int duplicates = 0;     ///< payload copies the receiver deduped
    bool gave_up = false;   ///< budget exhausted against a dead peer

    bool waited() const { return wait_end > wait_begin; }
  };

  ReliableChannel() = default;
  ReliableChannel(ReliableChannelConfig config, FaultInjector* faults,
                  int machine_count);

  /// True when no fault events exist: every plan is a single immediate
  /// attempt and callers may skip per-destination bookkeeping entirely.
  bool trivial() const { return faults_ == nullptr || faults_->empty(); }

  /// Plans the delivery of one logical message from src to dst starting at
  /// `now`. Each listed attempt costs the payload bytes on the src NIC.
  SendPlan plan_send(int src, int dst, TimeNs now);

  /// Marks a machine dead (crashed) / alive again after recovery. Sends to
  /// a dead machine fail deterministically.
  void set_dead(int machine, bool dead);

  const ChannelStats& stats(int machine) const { return stats_[machine]; }

 private:
  bool attempt_lost(int src, int dst, TimeNs t);

  ReliableChannelConfig config_;
  FaultInjector* faults_ = nullptr;
  int machines_ = 0;
  std::vector<std::uint64_t> next_seq_;  ///< machines_^2, row-major (src,dst)
  std::vector<char> dead_;
  std::vector<ChannelStats> stats_;
};

}  // namespace g10::sim
