// Seeded fault injection for the simulated cluster.
//
// A FaultSpec is a declarative schedule of fault events (worker crashes,
// transient machine slowdowns, NIC degradation / message loss, monitoring
// sampler dropout) parsed from a compact text grammar:
//
//   crash:w2@40%                  crash machine 2 at 40% of the nominal run
//   slow:w1@2s+3s:x0.5            machine 1 runs at 0.5x speed for 3s from t=2s
//   nic:w0@10%+30%:x0.25:loss=0.2 NIC at 25% rate, 20% send loss, for a window
//   drop:w3@30%+20%               machine 3's monitoring samples are dropped
//   part:w0-w2@30%+20%            network partition between machines 0 and 2
//
// Events are comma- (or semicolon-) separated; empty items between
// separators (trailing commas, doubled separators, whitespace-only parts)
// are normalized away, so `to_string()` always re-renders a canonical,
// separator-tidy form. Times and durations take an `s` suffix (absolute
// simulated seconds) or a `%` suffix (fraction of the engine's
// deterministic nominal-horizon estimate, resolved just before the run).
// `w*` targets every machine (window kinds only; a crash needs a specific
// victim, and a partition's first endpoint must be concrete — its peer may
// be `w*` to isolate one machine from the rest). Partitions require an
// explicit `+dur`: an unreachable-forever machine is a crash, not a
// partition. Engines consult a FaultInjector — a resolved FaultSpec plus
// its own forked RNG stream — so that fault decisions never perturb the
// engine's RNG sequence: a fault-free spec leaves a run byte-identical.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace g10::sim {

enum class FaultKind {
  kCrash,     ///< kill a worker process; engine recovers from a checkpoint
  kSlowdown,  ///< scale core_work_per_sec by `factor` inside the window
  kNicDegrade,  ///< scale NIC drain rate by `factor`, lose sends with p=loss
  kSampleDrop,  ///< suppress the machine's monitoring samples in the window
  kPartition,  ///< drop all traffic between two machines for a window
};

/// Returns the spec-grammar tag ("crash", "slow", "nic", "drop", "part").
std::string_view fault_kind_name(FaultKind kind);

/// A time coordinate as written in a spec: either absolute seconds or a
/// fraction of the nominal horizon (resolved later by the engine).
struct FaultTime {
  double value = 0.0;    ///< seconds, or fraction in [0,1]-ish when percent
  bool percent = false;  ///< true when written with a `%` suffix

  bool operator==(const FaultTime&) const = default;
};

struct FaultEvent {
  FaultKind kind = FaultKind::kSlowdown;
  int machine = 0;  ///< target machine, or kAllMachines for window kinds
  int machine_b = kNoMachine;  ///< partition peer (may be kAllMachines)
  FaultTime at;     ///< event time (window start for window kinds)
  FaultTime duration;        ///< window length; ignored for crashes
  bool open_ended = false;   ///< no `+dur` given: window lasts to end of run
  double factor = 1.0;       ///< speed / NIC-rate multiplier (slow, nic)
  double loss = 0.0;         ///< per-send loss probability (nic only)

  static constexpr int kAllMachines = -1;
  static constexpr int kNoMachine = -2;  ///< machine_b for non-partitions

  bool operator==(const FaultEvent&) const = default;
};

/// Bounds for FaultSpec::sample(): how many events to draw, which kinds are
/// allowed, and the windows/severities to jitter within. Times are sampled
/// percent-based (fractions of the nominal horizon) so one set of ranges
/// fits any workload size. All fractions are quantized to canonical grammar
/// precision, so every sampled spec round-trips parse ↔ to_string exactly.
struct FaultSampleRanges {
  int machine_count = 4;  ///< sampled targets stay below this (validate-safe)
  int min_events = 1;
  int max_events = 3;
  /// Kinds to draw from; empty means all five. Partitions are skipped when
  /// machine_count < 2, and at most one crash is drawn per spec (the
  /// engines recover a single victim per run).
  std::vector<FaultKind> kinds;
  double max_at = 0.85;         ///< event start in [0, max_at] of the run
  double min_duration = 0.05;   ///< window length bounds (fraction of run)
  double max_duration = 0.35;
  double min_factor = 0.2;      ///< slow / nic severity bounds
  double max_factor = 0.9;
  double max_loss = 0.4;        ///< nic loss probability in [0, max_loss]
  double open_ended_probability = 0.1;  ///< window kinds: no `+dur`
};

/// A parsed, unresolved fault schedule. Attached to ClusterSpec so that a
/// single engine config carries its chaos plan.
struct FaultSpec {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  bool has_kind(FaultKind kind) const;

  /// Parses the grammar described in the file comment. On failure returns
  /// nullopt and, when `error` is non-null, stores a diagnostic.
  static std::optional<FaultSpec> parse(std::string_view text,
                                        std::string* error = nullptr);

  /// Round-trips back to the spec grammar (canonical form).
  std::string to_string() const;

  /// Draws a jittered-but-valid fault schedule from `ranges`, consuming
  /// `rng`. The result always parses back from to_string() to an equal
  /// spec and passes validate(ranges.machine_count). Used by the ensemble
  /// driver's scenario matrix to explore the fault-pattern axis.
  static FaultSpec sample(Rng& rng, const FaultSampleRanges& ranges);

  /// Checks machine indices against the cluster size. Throws CheckError.
  void validate(int machine_count) const;

  bool operator==(const FaultSpec&) const = default;
};

/// A FaultSpec resolved against a concrete run: percent times converted to
/// absolute nanoseconds, plus an independent RNG stream for loss draws.
///
/// Queries are pure functions of (spec, time) except send_fails(), which
/// consumes the injector's RNG — but only when a loss window is active, so a
/// spec without loss never draws and determinism of the host run is intact.
class FaultInjector {
 public:
  FaultInjector() : rng_(0) {}
  FaultInjector(FaultSpec spec, std::uint64_t seed);

  bool empty() const { return spec_.events.empty(); }
  bool has_kind(FaultKind kind) const { return spec_.has_kind(kind); }
  const FaultSpec& spec() const { return spec_; }

  /// Converts percent-based times using the engine's nominal-horizon
  /// estimate. Must be called (once) before any query below.
  void resolve(TimeNs nominal_horizon);
  bool resolved() const { return resolved_; }

  /// Earliest not-yet-consumed crash time, if any.
  std::optional<TimeNs> next_crash_time() const;

  /// Consumes the earliest unconsumed crash with time <= now and returns its
  /// victim machine; nullopt when no crash is due.
  std::optional<int> take_crash(TimeNs now);

  /// Product of active slowdown factors for `machine` at time t (1.0 when
  /// no window is active).
  double speed_factor(int machine, TimeNs t) const;

  /// Product of active NIC-degradation factors for `machine` at time t.
  double nic_factor(int machine, TimeNs t) const;

  /// Bernoulli draw against the combined active loss probability. Consumes
  /// RNG only when some loss window is active for `machine` at time t.
  bool send_fails(int machine, TimeNs t);

  /// True when a sampler-dropout window covers (machine, t).
  bool sample_dropped(int machine, TimeNs t) const;

  /// True when some active partition window separates machines a and b at
  /// time t. A `part:wA-w*` event isolates A from every other machine.
  bool partitioned(int a, int b, TimeNs t) const;

  /// Earliest time >= t at which no partition window separates a and b
  /// (chained/overlapping windows are walked through). Returns t itself
  /// when the pair is currently connected.
  TimeNs partition_heal_time(int a, int b, TimeNs t) const;

  /// Resolved [begin, end) windows of `part:wA-w*` events that isolate
  /// `machine` from every peer (and from the coordinator; the failure
  /// detector builds its suspicion windows from these). Sorted by start.
  std::vector<std::pair<TimeNs, TimeNs>> isolation_windows(int machine) const;

  /// Sorted, deduplicated boundary times of all NIC-degradation windows;
  /// engines schedule drain-rate updates at these instants.
  std::vector<TimeNs> nic_change_times() const;

 private:
  struct Resolved {
    TimeNs begin = 0;
    TimeNs end = 0;  ///< == begin for crashes; horizon cap for open-ended
    bool consumed = false;  ///< crashes only
  };

  bool window_active(std::size_t i, int machine, TimeNs t) const;

  FaultSpec spec_;
  std::vector<Resolved> resolved_events_;
  Rng rng_;
  bool resolved_ = false;
};

}  // namespace g10::sim
