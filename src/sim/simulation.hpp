// Discrete-event simulation kernel.
//
// Both simulated graph engines run on this: engine logic schedules callbacks
// at absolute simulated times; the kernel executes them in (time, insertion)
// order, so runs are fully deterministic. There is no real concurrency —
// "threads" and "machines" are modeled entities.
//
// The kernel is pooled: event nodes live in a chunked, freelist-recycled
// slab (stable addresses — callbacks are invoked in place and may schedule
// without relocating the running node) and callbacks are stored in
// small-buffer-optimized InlineFunctions, so the steady-state schedule/fire
// cycle performs no heap allocation. EventIds are (generation << 32 | slot)
// handles — cancellation is an O(1) disarm of the slot, and a stale handle
// (already fired, or slot since recycled) fails the generation check and is
// a safe no-op. The ready queue is a 4-ary min-heap of 24-byte
// (time, seq, slot) entries: half the sift depth of a binary heap, and a
// node's four children share two cache lines.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/inline_function.hpp"
#include "common/time.hpp"

namespace g10::sim {

/// Opaque handle to a scheduled event: (generation << 32) | slot. The
/// generation starts at 1, so every valid id is >= 2^32 and arbitrary small
/// integers never name a live event.
using EventId = std::uint64_t;

/// Event-driven simulated clock.
class Simulation {
 public:
  TimeNs now() const { return now_; }

  /// Schedules fn at absolute time t (must be >= now).
  template <typename Fn>
  EventId schedule_at(TimeNs t, Fn&& fn) {
    G10_CHECK_MSG(t >= now_,
                  "cannot schedule in the past: t=" << t << " now=" << now_);
    const std::uint32_t slot = acquire_slot();
    Node& node = this->node(slot);
    node.armed = true;
    node.fn.assign(std::forward<Fn>(fn));
    heap_.push_back(HeapEntry{t, next_seq_++, slot});
    sift_up(heap_.size() - 1);
    ++armed_;
    return make_id(node.generation, slot);
  }

  /// Schedules fn `delay` after now.
  template <typename Fn>
  EventId schedule_after(DurationNs delay, Fn&& fn) {
    G10_CHECK(delay >= 0);
    return schedule_at(now_ + delay, std::forward<Fn>(fn));
  }

  /// Cancels a pending event and releases its callback immediately.
  /// Cancelling an already-fired, already-cancelled, or unknown id is a
  /// no-op: the handle's generation no longer matches the slot.
  void cancel(EventId id);

  /// Executes the single next event; false if the queue is empty.
  bool step() {
    while (!heap_.empty()) {
      const HeapEntry top = pop_heap_top();
      // A slot is only recycled once its heap entry pops, so `top.slot`
      // still refers to the scheduling that produced this entry.
      Node& node = this->node(top.slot);
      if (!node.armed) {
        release_slot(top.slot);
        continue;
      }
      node.armed = false;
      --armed_;
      now_ = top.time;
      // Chunked storage keeps the node's address stable even if the
      // callback schedules more events, so it runs in place; the slot is
      // still held, so nothing can overwrite the executing callback.
      node.fn();
      release_slot(top.slot);
      return true;
    }
    return false;
  }

  /// Runs events until the queue is empty. Returns the final clock value.
  TimeNs run() {
    while (step()) {
    }
    return now_;
  }

  std::size_t pending_events() const { return armed_; }

 private:
  struct Node {
    std::uint32_t generation = 1;  // bumped on slot recycle; never 0
    bool armed = false;
    InlineFunction fn;
  };
  struct HeapEntry {
    TimeNs time;
    std::uint64_t seq;  // monotonic tiebreaker: earlier-scheduled runs first
    std::uint32_t slot;

    bool operator<(const HeapEntry& other) const {
      if (time != other.time) return time < other.time;
      return seq < other.seq;
    }
  };

  static constexpr std::size_t kChunkShift = 9;  // 512 nodes per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  static constexpr std::size_t kArity = 4;  // heap fan-out

  static EventId make_id(std::uint32_t generation, std::uint32_t slot) {
    return (static_cast<EventId>(generation) << 32) | slot;
  }

  Node& node(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  std::uint32_t acquire_slot() {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    return grow_slab();
  }

  void release_slot(std::uint32_t slot) {
    Node& node = this->node(slot);
    node.fn.reset();
    if (++node.generation == 0) node.generation = 1;  // ids stay >= 2^32
    free_slots_.push_back(slot);
  }

  void sift_up(std::size_t index) {
    const HeapEntry entry = heap_[index];
    while (index > 0) {
      const std::size_t parent = (index - 1) / kArity;
      if (!(entry < heap_[parent])) break;
      heap_[index] = heap_[parent];
      index = parent;
    }
    heap_[index] = entry;
  }

  void sift_down(std::size_t index) {
    const std::size_t size = heap_.size();
    const HeapEntry entry = heap_[index];
    while (true) {
      const std::size_t first_child = index * kArity + 1;
      if (first_child >= size) break;
      const std::size_t last_child = std::min(first_child + kArity, size);
      std::size_t best = first_child;
      for (std::size_t child = first_child + 1; child < last_child; ++child) {
        if (heap_[child] < heap_[best]) best = child;
      }
      if (!(heap_[best] < entry)) break;
      heap_[index] = heap_[best];
      index = best;
    }
    heap_[index] = entry;
  }

  HeapEntry pop_heap_top() {
    const HeapEntry top = heap_.front();
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_.front() = last;
      sift_down(0);
    }
    return top;
  }

  std::uint32_t grow_slab();

  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t armed_ = 0;
  std::size_t node_count_ = 0;
  std::vector<std::unique_ptr<Node[]>> chunks_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<HeapEntry> heap_;  // 4-ary min-heap on (time, seq)
};

}  // namespace g10::sim
