// Discrete-event simulation kernel.
//
// Both simulated graph engines run on this: engine logic schedules callbacks
// at absolute simulated times; the kernel executes them in (time, insertion)
// order, so runs are fully deterministic. There is no real concurrency —
// "threads" and "machines" are modeled entities.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time.hpp"

namespace g10::sim {

using EventId = std::uint64_t;

/// Event-driven simulated clock.
class Simulation {
 public:
  TimeNs now() const { return now_; }

  /// Schedules fn at absolute time t (must be >= now).
  EventId schedule_at(TimeNs t, std::function<void()> fn);

  /// Schedules fn `delay` after now.
  EventId schedule_after(DurationNs delay, std::function<void()> fn);

  /// Cancels a pending event. Cancelling an already-fired or unknown id is
  /// a no-op (lazy deletion).
  void cancel(EventId id);

  /// Runs events until the queue is empty. Returns the final clock value.
  TimeNs run();

  /// Executes the single next event; false if the queue is empty.
  bool step();

  std::size_t pending_events() const;

 private:
  struct Event {
    TimeNs time;
    EventId id;  // also the tiebreaker: earlier-scheduled runs first
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  TimeNs now_ = 0;
  EventId next_id_ = 1;
  std::size_t cancelled_pending_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<EventId> cancelled_;  // sorted lazily on lookup

  bool is_cancelled(EventId id);
};

}  // namespace g10::sim
