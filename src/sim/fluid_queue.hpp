// Fluid queue with constant drain rate.
//
// Models a NIC transmit queue (drained at link bandwidth) and the Pregel
// engine's bounded message buffers: producers enqueue bytes instantaneously,
// the queue drains continuously, and producers that find the queue above its
// bound must wait until it sinks back — which is exactly the blocking-event
// phenomenon Grade10 observes in Giraph.
//
// Because the drain is linear, occupancy between events is closed-form; no
// polling events are needed.
#pragma once

#include "common/step_function.hpp"
#include "common/time.hpp"

namespace g10::sim {

class FluidQueue {
 public:
  /// drain_rate: units drained per second (> 0).
  explicit FluidQueue(double drain_rate);

  /// Adds `amount` at time `now` (now must be >= the last event time).
  void enqueue(TimeNs now, double amount);

  /// Occupancy at time `now`.
  double level(TimeNs now) const;

  /// Earliest time >= now at which occupancy drops to <= target.
  /// Assumes no further enqueues; returns now if already below.
  TimeNs time_until_level(TimeNs now, double target) const;

  /// Earliest time >= now at which the queue is empty.
  TimeNs time_empty(TimeNs now) const { return time_until_level(now, 0.0); }

  /// Changes the drain rate at time `now` (fault injection: NIC degradation
  /// windows). The busy span recorded so far is closed at the old rate and
  /// reopened at the new one, so the rate series reflects both regimes.
  void set_rate(TimeNs now, double rate);

  /// Discards all queued content at time `now` (fault injection: a crashed
  /// worker's in-flight messages are gone; they are re-sent after recovery).
  void clear(TimeNs now);

  double drain_rate() const { return drain_rate_; }

  /// Total amount ever enqueued (for conservation checks in tests).
  double total_enqueued() const { return total_enqueued_; }

  /// Finishes recording and returns the drain-rate step function: value is
  /// drain_rate while the queue was non-empty, 0 while idle. `end` must be
  /// at or after the last activity.
  StepFunction finalize_rate_series(TimeNs end);

 private:
  void advance(TimeNs now);

  double drain_rate_;
  double level_ = 0.0;
  TimeNs last_update_ = 0;
  double total_enqueued_ = 0.0;

  // Busy-interval tracking for the rate series.
  bool busy_ = false;
  TimeNs busy_start_ = 0;
  StepFunction rate_series_;
  bool finalized_ = false;
};

}  // namespace g10::sim
