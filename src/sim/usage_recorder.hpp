// Ground-truth resource usage recording.
//
// Every simulated machine owns one recorder per consumable resource (CPU
// cores in use, NIC transmit rate). The recorder is the *perfect* usage
// signal: the monitoring substrate samples it to produce the coarse traces
// Grade10 consumes, and Table II's accuracy experiment compares Grade10's
// upsampled output back against windowed averages of it.
#pragma once

#include <string>

#include "common/step_function.hpp"
#include "common/time.hpp"

namespace g10::sim {

class UsageRecorder {
 public:
  UsageRecorder(std::string name, double capacity);

  /// Adds delta to current usage at time t (e.g. +1 when a core starts).
  void add(TimeNs t, double delta);

  /// Sets the absolute usage level at time t (non-decreasing t).
  void set(TimeNs t, double value);

  double current() const { return series_.empty() ? 0.0 : series_.values().back(); }
  double capacity() const { return capacity_; }
  const std::string& name() const { return name_; }

  const StepFunction& series() const { return series_; }

  /// Average usage over [a, b) as a fraction of capacity.
  double utilization(TimeNs a, TimeNs b) const;

 private:
  std::string name_;
  double capacity_;
  StepFunction series_;
};

}  // namespace g10::sim
