#include "sim/failure_detector.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace g10::sim {
namespace {

// Stateless uniform-[0,1) hash of (seed, machine, k): the per-beat schedule
// jitter. SplitMix64 gives well-mixed bits without touching any run RNG.
double jitter01(std::uint64_t seed, int machine, int k) {
  std::uint64_t state = seed ^ 0x6d9f0c4f2a8e1b37ULL;
  state += static_cast<std::uint64_t>(machine + 1) * 0x9e3779b97f4a7c15ULL;
  state += static_cast<std::uint64_t>(k + 1) * 0xbf58476d1ce4e5b9ULL;
  const std::uint64_t bits = splitmix64_next(state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

FailureDetector::FailureDetector(FailureDetectorConfig config,
                                 const FaultInjector* faults)
    : config_(config), faults_(faults) {
  G10_CHECK_MSG(config_.interval_seconds > 0.0,
                "heartbeat interval must be positive");
  G10_CHECK_MSG(config_.timeout_seconds > 0.0,
                "heartbeat timeout must be positive");
  G10_CHECK_MSG(config_.jitter >= 0.0 && config_.jitter < 1.0,
                "heartbeat jitter must be in [0,1)");
}

TimeNs FailureDetector::heartbeat_time(int machine, int k) const {
  // h_k = sum of jittered intervals; each increment stays positive because
  // jitter < 1, so the schedule is strictly increasing.
  double seconds = 0.0;
  for (int i = 0; i <= k; ++i) {
    const double wobble =
        config_.jitter * (jitter01(config_.seed, machine, i) - 0.5);
    seconds += config_.interval_seconds * (1.0 + wobble);
  }
  return static_cast<TimeNs>(
      std::llround(seconds * static_cast<double>(kSecond)));
}

TimeNs FailureDetector::last_heartbeat_at_or_before(int machine,
                                                    TimeNs t) const {
  double seconds = 0.0;
  TimeNs last = 0;
  for (int k = 0;; ++k) {
    const double wobble =
        config_.jitter * (jitter01(config_.seed, machine, k) - 0.5);
    seconds += config_.interval_seconds * (1.0 + wobble);
    const TimeNs beat = static_cast<TimeNs>(
        std::llround(seconds * static_cast<double>(kSecond)));
    if (beat > t) return last;
    last = beat;
  }
}

TimeNs FailureDetector::detect_time(int machine, TimeNs crash_time) const {
  const TimeNs last = last_heartbeat_at_or_before(machine, crash_time);
  const TimeNs timeout = static_cast<TimeNs>(
      std::llround(config_.timeout_seconds * static_cast<double>(kSecond)));
  return std::max(crash_time, last + timeout);
}

std::vector<std::pair<TimeNs, TimeNs>> FailureDetector::suspicion_windows(
    int machine) const {
  std::vector<std::pair<TimeNs, TimeNs>> out;
  if (faults_ == nullptr) return out;
  const TimeNs timeout = static_cast<TimeNs>(
      std::llround(config_.timeout_seconds * static_cast<double>(kSecond)));
  for (const auto& [begin, end] : faults_->isolation_windows(machine)) {
    // Beats sent inside the window are lost; suspicion fires a timeout
    // after the last delivered beat and is refuted by the first beat sent
    // after the heal.
    const TimeNs suspect =
        last_heartbeat_at_or_before(machine, begin) + timeout;
    TimeNs refute = 0;
    for (int k = 0;; ++k) {
      const TimeNs beat = heartbeat_time(machine, k);
      if (beat >= end) {
        refute = beat;
        break;
      }
    }
    if (suspect >= refute) continue;  // healed before the timeout expired
    out.emplace_back(suspect, refute);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace g10::sim
