#include "sim/usage_recorder.hpp"

#include "common/check.hpp"

namespace g10::sim {

UsageRecorder::UsageRecorder(std::string name, double capacity)
    : name_(std::move(name)), capacity_(capacity) {
  G10_CHECK_MSG(capacity > 0.0, "resource capacity must be positive");
}

void UsageRecorder::add(TimeNs t, double delta) { series_.add(t, delta); }

void UsageRecorder::set(TimeNs t, double value) { series_.set(t, value); }

double UsageRecorder::utilization(TimeNs a, TimeNs b) const {
  return series_.average(a, b) / capacity_;
}

}  // namespace g10::sim
