// Cluster hardware description for the simulated engines.
#pragma once

#include <cstdint>

#include "common/check.hpp"
#include "sim/fault_injector.hpp"

namespace g10::sim {

/// Per-machine hardware. Core speed is expressed in abstract "work units"
/// per second; the engines' cost models translate graph work (vertex visits,
/// edge traversals, message handling) into work units.
struct MachineSpec {
  int cores = 8;
  double core_work_per_sec = 1.0e8;      ///< work units per core-second
  double nic_bandwidth_bps = 1.0e9;      ///< bits per second
  double memory_bytes = 16.0 * (1 << 30);

  double nic_bytes_per_sec() const { return nic_bandwidth_bps / 8.0; }
};

struct ClusterSpec {
  int machine_count = 4;
  MachineSpec machine;
  /// Seeded fault schedule applied by the engines (empty = clean run).
  FaultSpec faults;

  void validate() const {
    G10_CHECK(machine_count > 0);
    G10_CHECK(machine.cores > 0);
    G10_CHECK(machine.core_work_per_sec > 0);
    G10_CHECK(machine.nic_bandwidth_bps > 0);
    faults.validate(machine_count);
  }
};

}  // namespace g10::sim
