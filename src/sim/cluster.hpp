// Cluster hardware description for the simulated engines.
#pragma once

#include <cstdint>

#include "common/check.hpp"

namespace g10::sim {

/// Per-machine hardware. Core speed is expressed in abstract "work units"
/// per second; the engines' cost models translate graph work (vertex visits,
/// edge traversals, message handling) into work units.
struct MachineSpec {
  int cores = 8;
  double core_work_per_sec = 1.0e8;      ///< work units per core-second
  double nic_bandwidth_bps = 1.0e9;      ///< bits per second
  double memory_bytes = 16.0 * (1 << 30);

  double nic_bytes_per_sec() const { return nic_bandwidth_bps / 8.0; }
};

struct ClusterSpec {
  int machine_count = 4;
  MachineSpec machine;

  void validate() const {
    G10_CHECK(machine_count > 0);
    G10_CHECK(machine.cores > 0);
    G10_CHECK(machine.core_work_per_sec > 0);
    G10_CHECK(machine.nic_bandwidth_bps > 0);
  }
};

}  // namespace g10::sim
