#include "sim/fault_injector.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace g10::sim {
namespace {

// Parses "40%" / "2s" / "150ms" / bare "2" (seconds) into a FaultTime.
std::optional<FaultTime> parse_fault_time(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  FaultTime out;
  double scale = 1.0;
  if (text.back() == '%') {
    out.percent = true;
    scale = 0.01;
    text.remove_suffix(1);
  } else if (text.size() >= 2 && text.substr(text.size() - 2) == "ms") {
    scale = 1e-3;
    text.remove_suffix(2);
  } else if (text.back() == 's') {
    text.remove_suffix(1);
  }
  const auto value = parse_double(text);
  if (!value || *value < 0.0 || !std::isfinite(*value)) return std::nullopt;
  out.value = *value * scale;
  return out;
}

std::string fault_time_to_string(const FaultTime& t) {
  if (t.percent) return format_fixed(t.value * 100.0, 6 /*trimmed below*/);
  return format_fixed(t.value, 6);
}

// format_fixed keeps trailing zeros; strip them for a tidy canonical form.
std::string trim_number(std::string s) {
  if (s.find('.') == std::string::npos) return s;
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

std::string render_time(const FaultTime& t) {
  return trim_number(fault_time_to_string(t)) + (t.percent ? "%" : "s");
}

bool fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

// Parses one event ("crash:w2@40%"). Returns false with a diagnostic on
// malformed input.
bool parse_event(std::string_view text, FaultEvent* out, std::string* error) {
  const auto parts = split(text, ':');
  if (parts.size() < 2) {
    return fail(error, "fault event '" + std::string(text) +
                           "': expected <kind>:w<machine>@<time>...");
  }
  const std::string_view kind_name = trim(parts[0]);
  if (kind_name == "crash") {
    out->kind = FaultKind::kCrash;
  } else if (kind_name == "slow") {
    out->kind = FaultKind::kSlowdown;
  } else if (kind_name == "nic") {
    out->kind = FaultKind::kNicDegrade;
  } else if (kind_name == "drop") {
    out->kind = FaultKind::kSampleDrop;
  } else {
    return fail(error, "unknown fault kind '" + std::string(kind_name) +
                           "' (expected crash|slow|nic|drop)");
  }

  // Target + schedule: "w<machine>@<time>[+<duration>]".
  std::string_view target = trim(parts[1]);
  const auto at_pos = target.find('@');
  if (target.empty() || target.front() != 'w' ||
      at_pos == std::string_view::npos) {
    return fail(error, "fault event '" + std::string(text) +
                           "': expected target 'w<machine>@<time>'");
  }
  const std::string_view machine_text = target.substr(1, at_pos - 1);
  if (machine_text == "*") {
    if (out->kind == FaultKind::kCrash) {
      return fail(error, "crash faults need a specific machine, not 'w*'");
    }
    out->machine = FaultEvent::kAllMachines;
  } else {
    const auto machine = parse_int(machine_text);
    if (!machine || *machine < 0) {
      return fail(error, "bad machine index '" + std::string(machine_text) +
                             "' in fault event '" + std::string(text) + "'");
    }
    out->machine = static_cast<int>(*machine);
  }
  std::string_view schedule = target.substr(at_pos + 1);
  const auto plus_pos = schedule.find('+');
  std::string_view at_text = schedule.substr(0, plus_pos);
  const auto at = parse_fault_time(at_text);
  if (!at) {
    return fail(error, "bad fault time '" + std::string(at_text) +
                           "' in fault event '" + std::string(text) + "'");
  }
  out->at = *at;
  if (plus_pos != std::string_view::npos) {
    const std::string_view dur_text = schedule.substr(plus_pos + 1);
    const auto duration = parse_fault_time(dur_text);
    if (!duration || duration->value <= 0.0) {
      return fail(error, "bad fault duration '" + std::string(dur_text) +
                             "' in fault event '" + std::string(text) + "'");
    }
    out->duration = *duration;
  } else {
    out->open_ended = out->kind != FaultKind::kCrash;
  }
  if (out->kind == FaultKind::kCrash && plus_pos != std::string_view::npos) {
    return fail(error, "crash faults take no duration: '" + std::string(text) +
                           "'");
  }

  // Optional parameters: "x<factor>" and "loss=<p>".
  bool saw_factor = false;
  for (std::size_t i = 2; i < parts.size(); ++i) {
    const std::string_view param = trim(parts[i]);
    if (!param.empty() && param.front() == 'x') {
      const auto factor = parse_double(param.substr(1));
      if (!factor || *factor <= 0.0 || !std::isfinite(*factor)) {
        return fail(error, "bad factor '" + std::string(param) +
                               "' in fault event '" + std::string(text) + "'");
      }
      out->factor = *factor;
      saw_factor = true;
    } else if (starts_with(param, "loss=")) {
      const auto loss = parse_double(param.substr(5));
      if (!loss || *loss < 0.0 || *loss >= 1.0) {
        return fail(error, "bad loss probability '" + std::string(param) +
                               "' (need [0,1)) in '" + std::string(text) +
                               "'");
      }
      out->loss = *loss;
    } else {
      return fail(error, "unknown fault parameter '" + std::string(param) +
                             "' in fault event '" + std::string(text) + "'");
    }
  }
  if (out->kind == FaultKind::kSlowdown && !saw_factor) {
    return fail(error,
                "slow faults need an 'x<factor>' parameter: '" +
                    std::string(text) + "'");
  }
  if (out->loss > 0.0 && out->kind != FaultKind::kNicDegrade) {
    return fail(error, "'loss=' applies only to nic faults: '" +
                           std::string(text) + "'");
  }
  return true;
}

}  // namespace

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kSlowdown:
      return "slow";
    case FaultKind::kNicDegrade:
      return "nic";
    case FaultKind::kSampleDrop:
      return "drop";
  }
  return "?";
}

bool FaultSpec::has_kind(FaultKind kind) const {
  return std::any_of(events.begin(), events.end(),
                     [kind](const FaultEvent& e) { return e.kind == kind; });
}

std::optional<FaultSpec> FaultSpec::parse(std::string_view text,
                                          std::string* error) {
  FaultSpec spec;
  // Accept ',' and ';' as event separators.
  std::string normalized(text);
  std::replace(normalized.begin(), normalized.end(), ';', ',');
  for (const std::string_view part : split(normalized, ',')) {
    if (trim(part).empty()) continue;
    FaultEvent event;
    if (!parse_event(trim(part), &event, error)) return std::nullopt;
    spec.events.push_back(event);
  }
  return spec;
}

std::string FaultSpec::to_string() const {
  std::vector<std::string> parts;
  parts.reserve(events.size());
  for (const FaultEvent& e : events) {
    std::string s(fault_kind_name(e.kind));
    s += ":w";
    s += e.machine == FaultEvent::kAllMachines ? "*"
                                               : std::to_string(e.machine);
    s += "@" + render_time(e.at);
    if (e.kind != FaultKind::kCrash && !e.open_ended) {
      s += "+" + render_time(e.duration);
    }
    if (e.kind == FaultKind::kSlowdown || e.kind == FaultKind::kNicDegrade) {
      s += ":x" + trim_number(format_fixed(e.factor, 6));
    }
    if (e.loss > 0.0) {
      s += ":loss=" + trim_number(format_fixed(e.loss, 6));
    }
    parts.push_back(std::move(s));
  }
  return join(parts, ",");
}

void FaultSpec::validate(int machine_count) const {
  for (const FaultEvent& e : events) {
    if (e.machine == FaultEvent::kAllMachines) continue;
    G10_CHECK_MSG(e.machine < machine_count,
                  "fault event targets machine " + std::to_string(e.machine) +
                      " but the cluster has only " +
                      std::to_string(machine_count) + " machines");
  }
}

FaultInjector::FaultInjector(FaultSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed) {}

void FaultInjector::resolve(TimeNs nominal_horizon) {
  G10_CHECK_MSG(nominal_horizon > 0, "fault horizon must be positive");
  resolved_events_.clear();
  resolved_events_.reserve(spec_.events.size());
  const auto to_ns = [nominal_horizon](const FaultTime& t) -> TimeNs {
    const double seconds_or_fraction = t.value;
    const double ns = t.percent
                          ? seconds_or_fraction *
                                static_cast<double>(nominal_horizon)
                          : seconds_or_fraction * static_cast<double>(kSecond);
    return static_cast<TimeNs>(std::llround(ns));
  };
  for (const FaultEvent& e : spec_.events) {
    Resolved r;
    r.begin = to_ns(e.at);
    if (e.kind == FaultKind::kCrash) {
      r.end = r.begin;
    } else if (e.open_ended) {
      // Open-ended windows last "to end of run"; 64x the nominal horizon is
      // beyond any simulated clock value the engines produce.
      r.end = nominal_horizon * 64;
    } else {
      r.end = r.begin + to_ns(e.duration);
    }
    resolved_events_.push_back(r);
  }
  resolved_ = true;
}

std::optional<TimeNs> FaultInjector::next_crash_time() const {
  if (spec_.events.empty()) return std::nullopt;
  G10_CHECK_MSG(resolved_, "FaultInjector::resolve() must run first");
  std::optional<TimeNs> best;
  for (std::size_t i = 0; i < spec_.events.size(); ++i) {
    if (spec_.events[i].kind != FaultKind::kCrash) continue;
    if (resolved_events_[i].consumed) continue;
    const TimeNs t = resolved_events_[i].begin;
    if (!best || t < *best) best = t;
  }
  return best;
}

std::optional<int> FaultInjector::take_crash(TimeNs now) {
  if (spec_.events.empty()) return std::nullopt;
  G10_CHECK_MSG(resolved_, "FaultInjector::resolve() must run first");
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < spec_.events.size(); ++i) {
    if (spec_.events[i].kind != FaultKind::kCrash) continue;
    if (resolved_events_[i].consumed) continue;
    if (resolved_events_[i].begin > now) continue;
    if (!best || resolved_events_[i].begin < resolved_events_[*best].begin) {
      best = i;
    }
  }
  if (!best) return std::nullopt;
  resolved_events_[*best].consumed = true;
  return spec_.events[*best].machine;
}

bool FaultInjector::window_active(std::size_t i, int machine, TimeNs t) const {
  const FaultEvent& e = spec_.events[i];
  if (e.machine != FaultEvent::kAllMachines && e.machine != machine) {
    return false;
  }
  const Resolved& r = resolved_events_[i];
  return t >= r.begin && t < r.end;
}

double FaultInjector::speed_factor(int machine, TimeNs t) const {
  if (spec_.events.empty()) return 1.0;
  G10_CHECK_MSG(resolved_, "FaultInjector::resolve() must run first");
  double factor = 1.0;
  for (std::size_t i = 0; i < spec_.events.size(); ++i) {
    if (spec_.events[i].kind != FaultKind::kSlowdown) continue;
    if (window_active(i, machine, t)) factor *= spec_.events[i].factor;
  }
  return factor;
}

double FaultInjector::nic_factor(int machine, TimeNs t) const {
  if (spec_.events.empty()) return 1.0;
  G10_CHECK_MSG(resolved_, "FaultInjector::resolve() must run first");
  double factor = 1.0;
  for (std::size_t i = 0; i < spec_.events.size(); ++i) {
    if (spec_.events[i].kind != FaultKind::kNicDegrade) continue;
    if (window_active(i, machine, t)) factor *= spec_.events[i].factor;
  }
  return factor;
}

bool FaultInjector::send_fails(int machine, TimeNs t) {
  if (spec_.events.empty()) return false;
  G10_CHECK_MSG(resolved_, "FaultInjector::resolve() must run first");
  double pass = 1.0;
  for (std::size_t i = 0; i < spec_.events.size(); ++i) {
    if (spec_.events[i].kind != FaultKind::kNicDegrade) continue;
    if (spec_.events[i].loss <= 0.0) continue;
    if (window_active(i, machine, t)) pass *= 1.0 - spec_.events[i].loss;
  }
  // No active loss window: report success without touching the RNG, so that
  // runs outside the window keep the exact event sequence of a clean run.
  if (pass >= 1.0) return false;
  return rng_.next_bool(1.0 - pass);
}

bool FaultInjector::sample_dropped(int machine, TimeNs t) const {
  if (spec_.events.empty()) return false;
  G10_CHECK_MSG(resolved_, "FaultInjector::resolve() must run first");
  for (std::size_t i = 0; i < spec_.events.size(); ++i) {
    if (spec_.events[i].kind != FaultKind::kSampleDrop) continue;
    if (window_active(i, machine, t)) return true;
  }
  return false;
}

std::vector<TimeNs> FaultInjector::nic_change_times() const {
  if (spec_.events.empty()) return {};
  G10_CHECK_MSG(resolved_, "FaultInjector::resolve() must run first");
  std::vector<TimeNs> times;
  for (std::size_t i = 0; i < spec_.events.size(); ++i) {
    if (spec_.events[i].kind != FaultKind::kNicDegrade) continue;
    times.push_back(resolved_events_[i].begin);
    times.push_back(resolved_events_[i].end);
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

}  // namespace g10::sim
