#include "sim/fault_injector.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace g10::sim {
namespace {

// Parses "40%" / "2s" / "150ms" / bare "2" (seconds) into a FaultTime.
std::optional<FaultTime> parse_fault_time(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  FaultTime out;
  double scale = 1.0;
  if (text.back() == '%') {
    out.percent = true;
    scale = 0.01;
    text.remove_suffix(1);
  } else if (text.size() >= 2 && text.substr(text.size() - 2) == "ms") {
    scale = 1e-3;
    text.remove_suffix(2);
  } else if (text.back() == 's') {
    text.remove_suffix(1);
  }
  const auto value = parse_double(text);
  if (!value || *value < 0.0 || !std::isfinite(*value)) return std::nullopt;
  out.value = *value * scale;
  return out;
}

std::string fault_time_to_string(const FaultTime& t) {
  if (t.percent) return format_fixed(t.value * 100.0, 6 /*trimmed below*/);
  return format_fixed(t.value, 6);
}

// format_fixed keeps trailing zeros; strip them for a tidy canonical form.
std::string trim_number(std::string s) {
  if (s.find('.') == std::string::npos) return s;
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

std::string render_time(const FaultTime& t) {
  return trim_number(fault_time_to_string(t)) + (t.percent ? "%" : "s");
}

bool fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

// Parses one machine index ("2" or "*" when allow_all is set).
bool parse_machine(std::string_view machine_text, bool allow_all, int* out,
                   std::string_view event_text, std::string* error) {
  if (machine_text == "*") {
    if (!allow_all) {
      return fail(error, "'w*' is not a valid target here: '" +
                             std::string(event_text) + "'");
    }
    *out = FaultEvent::kAllMachines;
    return true;
  }
  const auto machine = parse_int(machine_text);
  if (!machine || *machine < 0) {
    return fail(error, "bad machine index '" + std::string(machine_text) +
                           "' in fault event '" + std::string(event_text) +
                           "'");
  }
  *out = static_cast<int>(*machine);
  return true;
}

// Parses one event ("crash:w2@40%", "part:w0-w2@30%+20%"). Returns false
// with a diagnostic on malformed input.
bool parse_event(std::string_view text, FaultEvent* out, std::string* error) {
  const auto parts = split(text, ':');
  if (parts.size() < 2) {
    return fail(error, "fault event '" + std::string(text) +
                           "': expected <kind>:w<machine>@<time>...");
  }
  const std::string_view kind_name = trim(parts[0]);
  if (kind_name == "crash") {
    out->kind = FaultKind::kCrash;
  } else if (kind_name == "slow") {
    out->kind = FaultKind::kSlowdown;
  } else if (kind_name == "nic") {
    out->kind = FaultKind::kNicDegrade;
  } else if (kind_name == "drop") {
    out->kind = FaultKind::kSampleDrop;
  } else if (kind_name == "part") {
    out->kind = FaultKind::kPartition;
  } else {
    return fail(error, "unknown fault kind '" + std::string(kind_name) +
                           "' (expected crash|slow|nic|drop|part)");
  }

  // Target + schedule: "w<machine>@<time>[+<duration>]"; partitions name a
  // machine pair "wA-wB".
  std::string_view target = trim(parts[1]);
  const auto at_pos = target.find('@');
  if (target.empty() || target.front() != 'w' ||
      at_pos == std::string_view::npos) {
    return fail(error, "fault event '" + std::string(text) +
                           "': expected target 'w<machine>@<time>'");
  }
  const std::string_view machine_text = target.substr(1, at_pos - 1);
  if (out->kind == FaultKind::kPartition) {
    const auto dash_pos = machine_text.find("-w");
    if (dash_pos == std::string_view::npos) {
      return fail(error, "partition faults need a machine pair 'wA-wB': '" +
                             std::string(text) + "'");
    }
    // The first endpoint must be concrete; the peer may be '*' (isolate the
    // first endpoint from every other machine).
    if (!parse_machine(trim(machine_text.substr(0, dash_pos)), false,
                       &out->machine, text, error)) {
      return false;
    }
    if (!parse_machine(trim(machine_text.substr(dash_pos + 2)), true,
                       &out->machine_b, text, error)) {
      return false;
    }
    if (out->machine_b == out->machine) {
      return fail(error, "partition endpoints must differ: '" +
                             std::string(text) + "'");
    }
  } else if (machine_text == "*") {
    if (out->kind == FaultKind::kCrash) {
      return fail(error, "crash faults need a specific machine, not 'w*'");
    }
    out->machine = FaultEvent::kAllMachines;
  } else {
    if (!parse_machine(machine_text, false, &out->machine, text, error)) {
      return false;
    }
  }
  std::string_view schedule = target.substr(at_pos + 1);
  const auto plus_pos = schedule.find('+');
  std::string_view at_text = schedule.substr(0, plus_pos);
  const auto at = parse_fault_time(at_text);
  if (!at) {
    return fail(error, "bad fault time '" + std::string(at_text) +
                           "' in fault event '" + std::string(text) + "'");
  }
  out->at = *at;
  if (plus_pos != std::string_view::npos) {
    const std::string_view dur_text = schedule.substr(plus_pos + 1);
    const auto duration = parse_fault_time(dur_text);
    if (!duration || duration->value <= 0.0) {
      return fail(error, "bad fault duration '" + std::string(dur_text) +
                             "' in fault event '" + std::string(text) + "'");
    }
    out->duration = *duration;
  } else {
    out->open_ended =
        out->kind != FaultKind::kCrash && out->kind != FaultKind::kPartition;
  }
  if (out->kind == FaultKind::kCrash && plus_pos != std::string_view::npos) {
    return fail(error, "crash faults take no duration: '" + std::string(text) +
                           "'");
  }
  if (out->kind == FaultKind::kPartition &&
      plus_pos == std::string_view::npos) {
    return fail(error,
                "partition faults need an explicit '+<duration>' (a machine "
                "unreachable forever is a crash): '" +
                    std::string(text) + "'");
  }

  // Optional parameters: "x<factor>" (slow, nic) and "loss=<p>" (nic).
  bool saw_factor = false;
  bool saw_loss = false;
  for (std::size_t i = 2; i < parts.size(); ++i) {
    const std::string_view param = trim(parts[i]);
    if (!param.empty() && param.front() == 'x') {
      if (out->kind != FaultKind::kSlowdown &&
          out->kind != FaultKind::kNicDegrade) {
        return fail(error, "'x<factor>' applies only to slow|nic faults: '" +
                               std::string(text) + "'");
      }
      if (saw_factor) {
        return fail(error, "duplicate factor parameter '" +
                               std::string(param) + "' in fault event '" +
                               std::string(text) + "'");
      }
      const auto factor = parse_double(param.substr(1));
      if (!factor || *factor <= 0.0 || !std::isfinite(*factor)) {
        return fail(error, "bad factor '" + std::string(param) +
                               "' in fault event '" + std::string(text) + "'");
      }
      out->factor = *factor;
      saw_factor = true;
    } else if (starts_with(param, "loss=")) {
      if (out->kind != FaultKind::kNicDegrade) {
        return fail(error, "'loss=' applies only to nic faults: '" +
                               std::string(text) + "'");
      }
      if (saw_loss) {
        return fail(error, "duplicate loss parameter '" + std::string(param) +
                               "' in fault event '" + std::string(text) +
                               "'");
      }
      const auto loss = parse_double(param.substr(5));
      if (!loss || *loss < 0.0 || *loss >= 1.0) {
        return fail(error, "bad loss probability '" + std::string(param) +
                               "' (need [0,1)) in '" + std::string(text) +
                               "'");
      }
      out->loss = *loss;
      saw_loss = true;
    } else {
      return fail(error, "unknown fault parameter '" + std::string(param) +
                             "' in fault event '" + std::string(text) + "'");
    }
  }
  if (out->kind == FaultKind::kSlowdown && !saw_factor) {
    return fail(error,
                "slow faults need an 'x<factor>' parameter: '" +
                    std::string(text) + "'");
  }
  return true;
}

// True when partition event e cuts the (a, b) link. `part:wA-w*` isolates A
// from everyone.
bool separates(const FaultEvent& e, int a, int b) {
  if (a == b) return false;
  if (e.machine_b == FaultEvent::kAllMachines) {
    return a == e.machine || b == e.machine;
  }
  return (a == e.machine && b == e.machine_b) ||
         (a == e.machine_b && b == e.machine);
}

}  // namespace

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kSlowdown:
      return "slow";
    case FaultKind::kNicDegrade:
      return "nic";
    case FaultKind::kSampleDrop:
      return "drop";
    case FaultKind::kPartition:
      return "part";
  }
  return "?";
}

bool FaultSpec::has_kind(FaultKind kind) const {
  return std::any_of(events.begin(), events.end(),
                     [kind](const FaultEvent& e) { return e.kind == kind; });
}

std::optional<FaultSpec> FaultSpec::parse(std::string_view text,
                                          std::string* error) {
  FaultSpec spec;
  // Accept ',' and ';' as event separators.
  std::string normalized(text);
  std::replace(normalized.begin(), normalized.end(), ';', ',');
  for (const std::string_view part : split(normalized, ',')) {
    if (trim(part).empty()) continue;
    FaultEvent event;
    if (!parse_event(trim(part), &event, error)) return std::nullopt;
    spec.events.push_back(event);
  }
  return spec;
}

std::string FaultSpec::to_string() const {
  std::vector<std::string> parts;
  parts.reserve(events.size());
  for (const FaultEvent& e : events) {
    std::string s(fault_kind_name(e.kind));
    s += ":w";
    s += e.machine == FaultEvent::kAllMachines ? "*"
                                               : std::to_string(e.machine);
    if (e.kind == FaultKind::kPartition) {
      s += "-w";
      s += e.machine_b == FaultEvent::kAllMachines
               ? "*"
               : std::to_string(e.machine_b);
    }
    s += '@';
    s += render_time(e.at);
    if (e.kind != FaultKind::kCrash && !e.open_ended) {
      s += '+';
      s += render_time(e.duration);
    }
    if (e.kind == FaultKind::kSlowdown || e.kind == FaultKind::kNicDegrade) {
      s += ":x";
      s += trim_number(format_fixed(e.factor, 6));
    }
    if (e.loss > 0.0) {
      s += ":loss=";
      s += trim_number(format_fixed(e.loss, 6));
    }
    parts.push_back(std::move(s));
  }
  return join(parts, ",");
}

FaultSpec FaultSpec::sample(Rng& rng, const FaultSampleRanges& ranges) {
  G10_CHECK_MSG(ranges.machine_count >= 1, "need at least one machine");
  G10_CHECK_MSG(ranges.min_events >= 0 &&
                    ranges.max_events >= ranges.min_events,
                "bad event-count range");
  G10_CHECK_MSG(ranges.max_at >= 0.0 && ranges.max_at <= 1.0 &&
                    ranges.min_duration > 0.0 &&
                    ranges.max_duration >= ranges.min_duration,
                "bad time ranges");
  G10_CHECK_MSG(ranges.min_factor > 0.0 &&
                    ranges.max_factor >= ranges.min_factor,
                "bad factor range");
  G10_CHECK_MSG(ranges.max_loss >= 0.0 && ranges.max_loss < 1.0,
                "bad loss range");

  std::vector<FaultKind> kinds = ranges.kinds;
  if (kinds.empty()) {
    kinds = {FaultKind::kCrash, FaultKind::kSlowdown, FaultKind::kNicDegrade,
             FaultKind::kSampleDrop, FaultKind::kPartition};
  }
  if (ranges.machine_count < 2) {
    std::erase(kinds, FaultKind::kPartition);
  }
  G10_CHECK_MSG(!kinds.empty(), "no fault kinds to sample from");

  // Values are drawn in basis points / hundredths and rendered as decimal
  // text, then the whole schedule is parsed back through the grammar. The
  // sampled spec therefore IS a parsed spec — its doubles took the exact
  // parse path — so to_string() round-trips to operator== equality instead
  // of drifting by an ulp.
  const auto percent = [&rng](double lo, double hi) {
    // Two-decimal percent in [lo*100, hi*100], e.g. "37.25%".
    const auto lo_bp = static_cast<std::int64_t>(std::ceil(lo * 1e4));
    const auto hi_bp = static_cast<std::int64_t>(std::floor(hi * 1e4));
    const std::int64_t bp = rng.next_int(lo_bp, std::max(lo_bp, hi_bp));
    return trim_number(format_fixed(static_cast<double>(bp) / 100.0, 2)) +
           "%";
  };
  const auto fraction = [&rng](double lo, double hi) {
    // Two-decimal bare fraction in [lo, hi], e.g. "0.42".
    const auto lo_c = static_cast<std::int64_t>(std::ceil(lo * 1e2));
    const auto hi_c = static_cast<std::int64_t>(std::floor(hi * 1e2));
    const std::int64_t c = rng.next_int(lo_c, std::max(lo_c, hi_c));
    return trim_number(format_fixed(static_cast<double>(c) / 100.0, 2));
  };

  const int count = static_cast<int>(
      rng.next_int(ranges.min_events, ranges.max_events));
  std::vector<std::string> events;
  events.reserve(static_cast<std::size_t>(count));
  bool crashed = false;
  for (int i = 0; i < count; ++i) {
    FaultKind kind = kinds[rng.next_below(kinds.size())];
    if (kind == FaultKind::kCrash && crashed) {
      kind = FaultKind::kSlowdown;  // one crash victim per run
    }
    const int machine =
        static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(ranges.machine_count)));
    std::string e(fault_kind_name(kind));
    e += ":w";
    const bool open_ended = kind != FaultKind::kCrash &&
                            kind != FaultKind::kPartition &&
                            rng.next_bool(ranges.open_ended_probability);
    switch (kind) {
      case FaultKind::kCrash:
        crashed = true;
        e += std::to_string(machine);
        e += '@' + percent(0.0, ranges.max_at);
        break;
      case FaultKind::kPartition: {
        int peer = static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(ranges.machine_count - 1)));
        if (peer >= machine) ++peer;  // distinct endpoints
        e += std::to_string(machine);
        e += "-w";
        // Occasionally isolate the endpoint from the whole fleet.
        e += rng.next_bool(0.2) ? "*" : std::to_string(peer);
        e += '@' + percent(0.0, ranges.max_at);
        e += '+' + percent(ranges.min_duration, ranges.max_duration);
        break;
      }
      default: {
        // Window kinds may target every machine at once.
        e += rng.next_bool(0.15) ? "*" : std::to_string(machine);
        e += '@' + percent(0.0, ranges.max_at);
        if (!open_ended) {
          e += '+' + percent(ranges.min_duration, ranges.max_duration);
        }
        if (kind == FaultKind::kSlowdown || kind == FaultKind::kNicDegrade) {
          e += ":x" + fraction(ranges.min_factor, ranges.max_factor);
        }
        if (kind == FaultKind::kNicDegrade && ranges.max_loss > 0.0 &&
            rng.next_bool(0.7)) {
          const std::string loss = fraction(0.01, ranges.max_loss);
          if (loss != "0") e += ":loss=" + loss;
        }
        break;
      }
    }
    events.push_back(std::move(e));
  }

  std::string error;
  const auto spec = FaultSpec::parse(join(events, ","), &error);
  G10_CHECK_MSG(spec.has_value(), "sampled spec failed to parse: " + error);
  spec->validate(ranges.machine_count);
  return *spec;
}

void FaultSpec::validate(int machine_count) const {
  const auto check_machine = [machine_count](int machine) {
    if (machine == FaultEvent::kAllMachines) return;
    G10_CHECK_MSG(machine < machine_count,
                  "fault event targets machine " + std::to_string(machine) +
                      " but the cluster has only " +
                      std::to_string(machine_count) + " machines");
  };
  for (const FaultEvent& e : events) {
    check_machine(e.machine);
    if (e.kind == FaultKind::kPartition) check_machine(e.machine_b);
  }
}

FaultInjector::FaultInjector(FaultSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed) {}

void FaultInjector::resolve(TimeNs nominal_horizon) {
  G10_CHECK_MSG(nominal_horizon > 0, "fault horizon must be positive");
  resolved_events_.clear();
  resolved_events_.reserve(spec_.events.size());
  const auto to_ns = [nominal_horizon](const FaultTime& t) -> TimeNs {
    const double seconds_or_fraction = t.value;
    const double ns = t.percent
                          ? seconds_or_fraction *
                                static_cast<double>(nominal_horizon)
                          : seconds_or_fraction * static_cast<double>(kSecond);
    return static_cast<TimeNs>(std::llround(ns));
  };
  for (const FaultEvent& e : spec_.events) {
    Resolved r;
    r.begin = to_ns(e.at);
    if (e.kind == FaultKind::kCrash) {
      r.end = r.begin;
    } else if (e.open_ended) {
      // Open-ended windows last "to end of run"; 64x the nominal horizon is
      // beyond any simulated clock value the engines produce.
      r.end = nominal_horizon * 64;
    } else {
      r.end = r.begin + to_ns(e.duration);
    }
    resolved_events_.push_back(r);
  }
  resolved_ = true;
}

std::optional<TimeNs> FaultInjector::next_crash_time() const {
  if (spec_.events.empty()) return std::nullopt;
  G10_CHECK_MSG(resolved_, "FaultInjector::resolve() must run first");
  std::optional<TimeNs> best;
  for (std::size_t i = 0; i < spec_.events.size(); ++i) {
    if (spec_.events[i].kind != FaultKind::kCrash) continue;
    if (resolved_events_[i].consumed) continue;
    const TimeNs t = resolved_events_[i].begin;
    if (!best || t < *best) best = t;
  }
  return best;
}

std::optional<int> FaultInjector::take_crash(TimeNs now) {
  if (spec_.events.empty()) return std::nullopt;
  G10_CHECK_MSG(resolved_, "FaultInjector::resolve() must run first");
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < spec_.events.size(); ++i) {
    if (spec_.events[i].kind != FaultKind::kCrash) continue;
    if (resolved_events_[i].consumed) continue;
    if (resolved_events_[i].begin > now) continue;
    if (!best || resolved_events_[i].begin < resolved_events_[*best].begin) {
      best = i;
    }
  }
  if (!best) return std::nullopt;
  resolved_events_[*best].consumed = true;
  return spec_.events[*best].machine;
}

bool FaultInjector::window_active(std::size_t i, int machine, TimeNs t) const {
  const FaultEvent& e = spec_.events[i];
  if (e.machine != FaultEvent::kAllMachines && e.machine != machine) {
    return false;
  }
  const Resolved& r = resolved_events_[i];
  return t >= r.begin && t < r.end;
}

double FaultInjector::speed_factor(int machine, TimeNs t) const {
  if (spec_.events.empty()) return 1.0;
  G10_CHECK_MSG(resolved_, "FaultInjector::resolve() must run first");
  double factor = 1.0;
  for (std::size_t i = 0; i < spec_.events.size(); ++i) {
    if (spec_.events[i].kind != FaultKind::kSlowdown) continue;
    if (window_active(i, machine, t)) factor *= spec_.events[i].factor;
  }
  return factor;
}

double FaultInjector::nic_factor(int machine, TimeNs t) const {
  if (spec_.events.empty()) return 1.0;
  G10_CHECK_MSG(resolved_, "FaultInjector::resolve() must run first");
  double factor = 1.0;
  for (std::size_t i = 0; i < spec_.events.size(); ++i) {
    if (spec_.events[i].kind != FaultKind::kNicDegrade) continue;
    if (window_active(i, machine, t)) factor *= spec_.events[i].factor;
  }
  return factor;
}

bool FaultInjector::send_fails(int machine, TimeNs t) {
  if (spec_.events.empty()) return false;
  G10_CHECK_MSG(resolved_, "FaultInjector::resolve() must run first");
  double pass = 1.0;
  for (std::size_t i = 0; i < spec_.events.size(); ++i) {
    if (spec_.events[i].kind != FaultKind::kNicDegrade) continue;
    if (spec_.events[i].loss <= 0.0) continue;
    if (window_active(i, machine, t)) pass *= 1.0 - spec_.events[i].loss;
  }
  // No active loss window: report success without touching the RNG, so that
  // runs outside the window keep the exact event sequence of a clean run.
  if (pass >= 1.0) return false;
  return rng_.next_bool(1.0 - pass);
}

bool FaultInjector::sample_dropped(int machine, TimeNs t) const {
  if (spec_.events.empty()) return false;
  G10_CHECK_MSG(resolved_, "FaultInjector::resolve() must run first");
  for (std::size_t i = 0; i < spec_.events.size(); ++i) {
    if (spec_.events[i].kind != FaultKind::kSampleDrop) continue;
    if (window_active(i, machine, t)) return true;
  }
  return false;
}

bool FaultInjector::partitioned(int a, int b, TimeNs t) const {
  if (spec_.events.empty()) return false;
  G10_CHECK_MSG(resolved_, "FaultInjector::resolve() must run first");
  for (std::size_t i = 0; i < spec_.events.size(); ++i) {
    const FaultEvent& e = spec_.events[i];
    if (e.kind != FaultKind::kPartition || !separates(e, a, b)) continue;
    const Resolved& r = resolved_events_[i];
    if (t >= r.begin && t < r.end) return true;
  }
  return false;
}

TimeNs FaultInjector::partition_heal_time(int a, int b, TimeNs t) const {
  if (spec_.events.empty()) return t;
  G10_CHECK_MSG(resolved_, "FaultInjector::resolve() must run first");
  // Walk through chained/overlapping windows: each pass extends the heal
  // time to the latest end of a window still covering it.
  TimeNs heal = t;
  bool advanced = true;
  while (advanced) {
    advanced = false;
    for (std::size_t i = 0; i < spec_.events.size(); ++i) {
      const FaultEvent& e = spec_.events[i];
      if (e.kind != FaultKind::kPartition || !separates(e, a, b)) continue;
      const Resolved& r = resolved_events_[i];
      if (heal >= r.begin && heal < r.end) {
        heal = r.end;
        advanced = true;
      }
    }
  }
  return heal;
}

std::vector<std::pair<TimeNs, TimeNs>> FaultInjector::isolation_windows(
    int machine) const {
  if (spec_.events.empty()) return {};
  G10_CHECK_MSG(resolved_, "FaultInjector::resolve() must run first");
  std::vector<std::pair<TimeNs, TimeNs>> windows;
  for (std::size_t i = 0; i < spec_.events.size(); ++i) {
    const FaultEvent& e = spec_.events[i];
    if (e.kind != FaultKind::kPartition) continue;
    if (e.machine != machine || e.machine_b != FaultEvent::kAllMachines) {
      continue;
    }
    windows.emplace_back(resolved_events_[i].begin, resolved_events_[i].end);
  }
  std::sort(windows.begin(), windows.end());
  return windows;
}

std::vector<TimeNs> FaultInjector::nic_change_times() const {
  if (spec_.events.empty()) return {};
  G10_CHECK_MSG(resolved_, "FaultInjector::resolve() must run first");
  std::vector<TimeNs> times;
  for (std::size_t i = 0; i < spec_.events.size(); ++i) {
    if (spec_.events[i].kind != FaultKind::kNicDegrade) continue;
    times.push_back(resolved_events_[i].begin);
    times.push_back(resolved_events_[i].end);
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

}  // namespace g10::sim
