#include "sim/fluid_queue.hpp"

#include <cmath>

#include "common/check.hpp"

namespace g10::sim {

FluidQueue::FluidQueue(double drain_rate) : drain_rate_(drain_rate) {
  G10_CHECK_MSG(drain_rate > 0.0, "drain rate must be positive");
}

void FluidQueue::advance(TimeNs now) {
  G10_CHECK_MSG(now >= last_update_, "fluid queue time went backwards");
  if (now == last_update_) return;
  const double drained =
      drain_rate_ * to_seconds(now - last_update_);
  if (busy_ && level_ <= drained) {
    // Queue emptied somewhere in (last_update_, now]; close the busy span.
    const auto empty_at = static_cast<TimeNs>(
        static_cast<double>(last_update_) +
        level_ / drain_rate_ * static_cast<double>(kSecond));
    rate_series_.set(busy_start_, drain_rate_);
    rate_series_.set(empty_at, 0.0);
    busy_ = false;
  }
  level_ = std::fmax(0.0, level_ - drained);
  last_update_ = now;
}

void FluidQueue::enqueue(TimeNs now, double amount) {
  G10_CHECK(!finalized_);
  G10_CHECK(amount >= 0.0);
  advance(now);
  if (amount == 0.0) return;
  if (!busy_ && level_ == 0.0) {
    busy_ = true;
    busy_start_ = now;
  }
  level_ += amount;
  total_enqueued_ += amount;
}

double FluidQueue::level(TimeNs now) const {
  if (now <= last_update_) return level_;
  const double drained = drain_rate_ * to_seconds(now - last_update_);
  return std::fmax(0.0, level_ - drained);
}

TimeNs FluidQueue::time_until_level(TimeNs now, double target) const {
  const double current = level(now);
  if (current <= target) return now;
  const double excess = current - target;
  const double seconds = excess / drain_rate_;
  return now + static_cast<TimeNs>(
                   std::ceil(seconds * static_cast<double>(kSecond)));
}

void FluidQueue::set_rate(TimeNs now, double rate) {
  G10_CHECK(!finalized_);
  G10_CHECK_MSG(rate > 0.0, "drain rate must be positive");
  advance(now);
  if (rate == drain_rate_) return;
  if (busy_) {
    // Close the segment drained at the old rate and reopen at the new one.
    rate_series_.set(busy_start_, drain_rate_);
    rate_series_.set(now, rate);
    busy_start_ = now;
  }
  drain_rate_ = rate;
}

void FluidQueue::clear(TimeNs now) {
  G10_CHECK(!finalized_);
  advance(now);
  if (busy_) {
    rate_series_.set(busy_start_, drain_rate_);
    rate_series_.set(now, 0.0);
    busy_ = false;
  }
  level_ = 0.0;
}

StepFunction FluidQueue::finalize_rate_series(TimeNs end) {
  G10_CHECK(!finalized_);
  advance(end);
  if (busy_) {
    // Still draining at `end`: record busy up to the projected empty time
    // (clipped to end — consumers integrate only up to end anyway).
    rate_series_.set(busy_start_, drain_rate_);
    rate_series_.set(time_empty(end), 0.0);
    busy_ = false;
  }
  finalized_ = true;
  return rate_series_;
}

}  // namespace g10::sim
