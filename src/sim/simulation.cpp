#include "sim/simulation.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace g10::sim {

EventId Simulation::schedule_at(TimeNs t, std::function<void()> fn) {
  G10_CHECK_MSG(t >= now_, "cannot schedule in the past: t=" << t
                                                             << " now=" << now_);
  const EventId id = next_id_++;
  queue_.push(Event{t, id, std::move(fn)});
  return id;
}

EventId Simulation::schedule_after(DurationNs delay, std::function<void()> fn) {
  G10_CHECK(delay >= 0);
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulation::cancel(EventId id) {
  cancelled_.push_back(id);
  ++cancelled_pending_;
}

bool Simulation::is_cancelled(EventId id) {
  if (cancelled_.empty()) return false;
  const auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
  if (it == cancelled_.end()) return false;
  cancelled_.erase(it);
  --cancelled_pending_;
  return true;
}

bool Simulation::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (is_cancelled(ev.id)) continue;
    now_ = ev.time;
    ev.fn();
    return true;
  }
  return false;
}

TimeNs Simulation::run() {
  while (step()) {
  }
  return now_;
}

std::size_t Simulation::pending_events() const {
  return queue_.size() - cancelled_pending_;
}

}  // namespace g10::sim
