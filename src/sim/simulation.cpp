#include "sim/simulation.hpp"

#include <limits>

namespace g10::sim {

void Simulation::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (slot >= node_count_) return;
  Node& node = this->node(slot);
  if (!node.armed || node.generation != generation) return;
  node.armed = false;
  node.fn.reset();  // drop captured state now, not when the heap drains
  --armed_;
  // The heap entry stays behind and is discarded (and the slot recycled)
  // when it reaches the top; with the callback already destroyed that
  // leftover is 24 bytes, not an O(n) scan per pop.
}

std::uint32_t Simulation::grow_slab() {
  G10_CHECK(node_count_ < std::numeric_limits<std::uint32_t>::max());
  if (node_count_ == chunks_.size() * kChunkSize) {
    chunks_.push_back(std::make_unique<Node[]>(kChunkSize));
  }
  return static_cast<std::uint32_t>(node_count_++);
}

}  // namespace g10::sim
