// Heartbeat-based failure detection for the simulated cluster.
//
// Every worker process heartbeats a coordinator (the master, hosted outside
// the worker set) on a per-machine jittered schedule; the coordinator
// declares a worker dead once it has heard nothing for a timeout. The
// detector here is purely computational: heartbeat instants are a
// deterministic schedule derived from (seed, machine, beat index) — no
// simulated heartbeat traffic, no RNG consumed from the host run — so the
// detection latency of a crash is a pure function of the config and the
// crash time. This is what replaces the engines' old omniscient behaviour
// of starting recovery the instant the injector fired a crash: survivors
// now pay a realistic silence-window delay before recovery begins.
//
// Network partitions raise *suspicion* only. A pairwise `part:wA-wB` window
// never cuts a worker off from the coordinator, and an isolation window
// (`part:wA-w*`) silences A's heartbeats only until it heals — the
// coordinator's suspicion is refuted by the first post-heal heartbeat, so
// `part:` faults are ridden out without triggering recovery. The suspicion
// windows are exposed for inspection/tests via suspicion_windows().
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "sim/fault_injector.hpp"

namespace g10::sim {

struct FailureDetectorConfig {
  double interval_seconds = 0.05;  ///< nominal heartbeat period
  double timeout_seconds = 0.15;   ///< silence needed to declare death
  double jitter = 0.2;             ///< per-beat schedule jitter (fraction)
  std::uint64_t seed = 0;          ///< folded into the jitter hash
};

class FailureDetector {
 public:
  FailureDetector() = default;
  FailureDetector(FailureDetectorConfig config, const FaultInjector* faults);

  const FailureDetectorConfig& config() const { return config_; }

  /// Send time of `machine`'s k-th heartbeat (deterministically jittered,
  /// strictly increasing in k).
  TimeNs heartbeat_time(int machine, int k) const;

  /// Send time of the last heartbeat of `machine` at or before t (0 when t
  /// precedes the first beat).
  TimeNs last_heartbeat_at_or_before(int machine, TimeNs t) const;

  /// Time at which the coordinator declares `machine` dead given that it
  /// crashed (went silent) at `crash_time`: the timeout expiry after the
  /// victim's last delivered heartbeat, never before the crash itself.
  TimeNs detect_time(int machine, TimeNs crash_time) const;

  /// [suspect, refute) windows during which the coordinator suspects
  /// `machine` because an isolation partition (`part:wA-w*`) silenced its
  /// heartbeats. Pairwise partitions produce none. Windows whose partition
  /// heals before the timeout expires never open. Sorted by start time.
  std::vector<std::pair<TimeNs, TimeNs>> suspicion_windows(int machine) const;

 private:
  FailureDetectorConfig config_;
  const FaultInjector* faults_ = nullptr;
};

}  // namespace g10::sim
