#include "algorithms/reference.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <limits>

#include "common/check.hpp"

namespace g10::algorithms {

using graph::Graph;
using graph::VertexId;

std::vector<double> pagerank_reference(const Graph& g, int iterations,
                                       double damping) {
  G10_CHECK(iterations >= 0);
  const VertexId n = g.vertex_count();
  G10_CHECK(n > 0);
  const double base = (1.0 - damping) / static_cast<double>(n);
  std::vector<double> current(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  for (int step = 0; step < iterations; ++step) {
    for (VertexId v = 0; v < n; ++v) {
      double sum = 0.0;
      for (VertexId u : g.in_neighbors(v)) {
        sum += current[u] / static_cast<double>(g.out_degree(u));
      }
      next[v] = base + damping * sum;
    }
    current.swap(next);
  }
  return current;
}

std::vector<double> bfs_reference(const Graph& g, VertexId source) {
  const VertexId n = g.vertex_count();
  G10_CHECK(source < n);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);
  dist[source] = 0.0;
  std::deque<VertexId> frontier{source};
  while (!frontier.empty()) {
    const VertexId u = frontier.front();
    frontier.pop_front();
    for (VertexId v : g.out_neighbors(u)) {
      if (dist[v] == kInf) {
        dist[v] = dist[u] + 1.0;
        frontier.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<double> sssp_reference(const Graph& g, VertexId source) {
  const VertexId n = g.vertex_count();
  G10_CHECK(source < n);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);
  dist[source] = 0.0;
  using Entry = std::pair<double, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  queue.push({0.0, source});
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;  // stale entry
    const auto nbrs = g.out_neighbors(u);
    for (graph::EdgeIndex i = 0; i < nbrs.size(); ++i) {
      const double w = g.edge_weight(g.edge_id(u, i));
      G10_CHECK_MSG(w >= 0.0, "Dijkstra requires non-negative weights");
      if (d + w < dist[nbrs[i]]) {
        dist[nbrs[i]] = d + w;
        queue.push({dist[nbrs[i]], nbrs[i]});
      }
    }
  }
  return dist;
}

std::vector<double> wcc_reference(const Graph& g) {
  const VertexId n = g.vertex_count();
  std::vector<double> label(n);
  std::vector<bool> visited(n, false);
  std::deque<VertexId> queue;
  for (VertexId start = 0; start < n; ++start) {
    if (visited[start]) continue;
    visited[start] = true;
    label[start] = static_cast<double>(start);
    queue.push_back(start);
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop_front();
      // Follow both directions so the result is well-defined even if the
      // caller passes a non-symmetrized graph.
      for (VertexId v : g.out_neighbors(u)) {
        if (!visited[v]) {
          visited[v] = true;
          label[v] = static_cast<double>(start);
          queue.push_back(v);
        }
      }
      for (VertexId v : g.in_neighbors(u)) {
        if (!visited[v]) {
          visited[v] = true;
          label[v] = static_cast<double>(start);
          queue.push_back(v);
        }
      }
    }
  }
  return label;
}

namespace {

/// Most frequent value; ties broken toward the smallest. `values` is
/// modified (sorted). Empty input is the caller's responsibility.
double mode_smallest(std::vector<double>& values) {
  std::sort(values.begin(), values.end());
  double best = values.front();
  std::size_t best_count = 0;
  std::size_t i = 0;
  while (i < values.size()) {
    std::size_t j = i;
    while (j < values.size() && values[j] == values[i]) ++j;
    if (j - i > best_count) {
      best_count = j - i;
      best = values[i];
    }
    i = j;
  }
  return best;
}

}  // namespace

std::vector<double> cdlp_reference(const Graph& g, int iterations) {
  G10_CHECK(iterations >= 0);
  const VertexId n = g.vertex_count();
  std::vector<double> current(n);
  for (VertexId v = 0; v < n; ++v) current[v] = static_cast<double>(v);
  std::vector<double> next(n);
  std::vector<double> scratch;
  for (int step = 0; step < iterations; ++step) {
    for (VertexId v = 0; v < n; ++v) {
      const auto nbrs = g.in_neighbors(v);
      if (nbrs.empty()) {
        next[v] = current[v];
        continue;
      }
      scratch.clear();
      for (VertexId u : nbrs) scratch.push_back(current[u]);
      next[v] = mode_smallest(scratch);
    }
    current.swap(next);
  }
  return current;
}

}  // namespace g10::algorithms
