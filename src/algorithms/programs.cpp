#include "algorithms/programs.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace g10::algorithms {

using graph::Graph;
using graph::VertexId;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

double mode_smallest_label(std::vector<double> values) {
  G10_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  double best = values.front();
  std::size_t best_count = 0;
  std::size_t i = 0;
  while (i < values.size()) {
    std::size_t j = i;
    while (j < values.size() && values[j] == values[i]) ++j;
    if (j - i > best_count) {
      best_count = j - i;
      best = values[i];
    }
    i = j;
  }
  return best;
}

// ---------------------------------------------------------------- PageRank

PageRank::PageRank(int iterations, double damping)
    : iterations_(iterations), damping_(damping) {
  G10_CHECK(iterations >= 1);
  G10_CHECK(damping > 0.0 && damping < 1.0);
}

std::string PageRank::name() const { return "PageRank"; }

double PageRank::initial_value(VertexId, const Graph& g) const {
  return 1.0 / static_cast<double>(g.vertex_count());
}

void PageRank::compute(VertexId v, double& value,
                       std::span<const double> messages, int superstep,
                       const Graph& g, PregelOutbox& out) const {
  const double n = static_cast<double>(g.vertex_count());
  if (superstep > 0) {
    double sum = 0.0;
    for (double m : messages) sum += m;
    value = (1.0 - damping_) / n + damping_ * sum;
  }
  if (superstep < iterations_) {
    const auto degree = g.out_degree(v);
    if (degree > 0) {
      out.send_to_all_neighbors = true;
      out.message = value / static_cast<double>(degree);
    }
  } else {
    out.vote_to_halt = true;
  }
}

bool PageRank::initially_active(VertexId, const Graph&) const { return true; }

double PageRank::apply(VertexId, double, std::span<const VertexId> neighbors,
                       std::span<const double> neighbor_values,
                       std::span<const double>, int, const Graph& g) const {
  const double n = static_cast<double>(g.vertex_count());
  double sum = 0.0;
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    sum += neighbor_values[i] / static_cast<double>(g.out_degree(neighbors[i]));
  }
  return (1.0 - damping_) / n + damping_ * sum;
}

bool PageRank::scatter_activates(VertexId, double, double, int iteration) const {
  return iteration + 1 < iterations_;
}

// --------------------------------------------------------------------- BFS

Bfs::Bfs(VertexId source) : source_(source) {}

std::string Bfs::name() const { return "BFS"; }

int Bfs::max_supersteps() const {
  // Diameter-bounded; a generous hard cap keeps runaway traces impossible.
  return 10'000;
}

int Bfs::max_iterations() const { return 10'000; }

double Bfs::initial_value(VertexId v, const Graph&) const {
  return v == source_ ? 0.0 : kInf;
}

void Bfs::compute(VertexId v, double& value, std::span<const double> messages,
                  int superstep, const Graph&, PregelOutbox& out) const {
  if (superstep == 0) {
    if (v == source_) {
      out.send_to_all_neighbors = true;
      out.message = 1.0;
    }
    out.vote_to_halt = true;
    return;
  }
  double best = kInf;
  for (double m : messages) best = std::min(best, m);
  if (best < value) {
    value = best;
    out.send_to_all_neighbors = true;
    out.message = value + 1.0;
  }
  out.vote_to_halt = true;
}

bool Bfs::initially_active(VertexId v, const Graph&) const {
  return v == source_;
}

double Bfs::apply(VertexId, double current, std::span<const VertexId>,
                  std::span<const double> neighbor_values,
                  std::span<const double>, int, const Graph&) const {
  double best = current;
  for (double d : neighbor_values) best = std::min(best, d + 1.0);
  return best;
}

bool Bfs::scatter_activates(VertexId, double old_value, double new_value,
                            int iteration) const {
  // The source settles at distance 0 in iteration 0 without "improving";
  // it must still signal its neighbors to start the traversal.
  if (iteration == 0 && new_value == 0.0) return true;
  return new_value < old_value;
}

// --------------------------------------------------------------------- WCC

std::string Wcc::name() const { return "WCC"; }

int Wcc::max_supersteps() const { return 10'000; }
int Wcc::max_iterations() const { return 10'000; }

double Wcc::initial_value(VertexId v, const Graph&) const {
  return static_cast<double>(v);
}

void Wcc::compute(VertexId, double& value, std::span<const double> messages,
                  int superstep, const Graph&, PregelOutbox& out) const {
  if (superstep == 0) {
    out.send_to_all_neighbors = true;
    out.message = value;
    out.vote_to_halt = true;
    return;
  }
  double best = value;
  for (double m : messages) best = std::min(best, m);
  if (best < value) {
    value = best;
    out.send_to_all_neighbors = true;
    out.message = value;
  }
  out.vote_to_halt = true;
}

bool Wcc::initially_active(VertexId, const Graph&) const { return true; }

double Wcc::apply(VertexId, double current, std::span<const VertexId>,
                  std::span<const double> neighbor_values,
                  std::span<const double>, int, const Graph&) const {
  double best = current;
  for (double m : neighbor_values) best = std::min(best, m);
  return best;
}

bool Wcc::scatter_activates(VertexId, double old_value, double new_value,
                            int) const {
  return new_value < old_value;
}

// -------------------------------------------------------------------- CDLP

Cdlp::Cdlp(int iterations) : iterations_(iterations) {
  G10_CHECK(iterations >= 1);
}

std::string Cdlp::name() const { return "CDLP"; }

double Cdlp::initial_value(VertexId v, const Graph&) const {
  return static_cast<double>(v);
}

void Cdlp::compute(VertexId, double& value, std::span<const double> messages,
                   int superstep, const Graph&, PregelOutbox& out) const {
  if (superstep > 0 && !messages.empty()) {
    value = mode_smallest_label(
        std::vector<double>(messages.begin(), messages.end()));
  }
  if (superstep < iterations_) {
    out.send_to_all_neighbors = true;
    out.message = value;
  } else {
    out.vote_to_halt = true;
  }
}

bool Cdlp::initially_active(VertexId, const Graph&) const { return true; }

double Cdlp::apply(VertexId, double current, std::span<const VertexId>,
                   std::span<const double> neighbor_values,
                   std::span<const double>, int, const Graph&) const {
  if (neighbor_values.empty()) return current;
  return mode_smallest_label(
      std::vector<double>(neighbor_values.begin(), neighbor_values.end()));
}

bool Cdlp::scatter_activates(VertexId, double, double, int iteration) const {
  return iteration + 1 < iterations_;
}


// -------------------------------------------------------------------- SSSP

Sssp::Sssp(VertexId source) : source_(source) {}

std::string Sssp::name() const { return "SSSP"; }

int Sssp::max_supersteps() const { return 100'000; }
int Sssp::max_iterations() const { return 100'000; }

double Sssp::initial_value(VertexId v, const Graph&) const {
  return v == source_ ? 0.0 : kInf;
}

void Sssp::compute(VertexId v, double& value, std::span<const double> messages,
                   int superstep, const Graph&, PregelOutbox& out) const {
  if (superstep == 0) {
    if (v == source_) {
      out.send_to_all_neighbors = true;
      out.message = 0.0;
      out.add_edge_weight = true;
    }
    out.vote_to_halt = true;
    return;
  }
  double best = kInf;
  for (double m : messages) best = std::min(best, m);
  if (best < value) {
    value = best;
    out.send_to_all_neighbors = true;
    out.message = value;
    out.add_edge_weight = true;
  }
  out.vote_to_halt = true;
}

bool Sssp::initially_active(VertexId v, const Graph&) const {
  return v == source_;
}

double Sssp::apply(VertexId, double current, std::span<const VertexId>,
                   std::span<const double> neighbor_values,
                   std::span<const double> neighbor_weights, int,
                   const Graph&) const {
  double best = current;
  for (std::size_t i = 0; i < neighbor_values.size(); ++i) {
    const double w = neighbor_weights.empty() ? 1.0 : neighbor_weights[i];
    best = std::min(best, neighbor_values[i] + w);
  }
  return best;
}

bool Sssp::scatter_activates(VertexId, double old_value, double new_value,
                             int iteration) const {
  if (iteration == 0 && new_value == 0.0) return true;
  return new_value < old_value;
}

}  // namespace g10::algorithms
