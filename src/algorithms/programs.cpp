#include "algorithms/programs.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace g10::algorithms {

using graph::Graph;
using graph::VertexId;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Minimum over a span folded through four independent accumulators so the
/// compiler can vectorize what a single serial min chain cannot. min is
/// order-independent bitwise (no NaNs reach these loops), so the regrouping
/// returns exactly what the serial fold would.
double min_over(std::span<const double> values, double init) {
  double a = init;
  double b = init;
  double c = init;
  double d = init;
  std::size_t i = 0;
  for (; i + 4 <= values.size(); i += 4) {
    a = std::min(a, values[i]);
    b = std::min(b, values[i + 1]);
    c = std::min(c, values[i + 2]);
    d = std::min(d, values[i + 3]);
  }
  for (; i < values.size(); ++i) a = std::min(a, values[i]);
  return std::min(std::min(a, b), std::min(c, d));
}
}  // namespace

double mode_smallest_label(std::span<const double> values) {
  G10_CHECK(!values.empty());
  thread_local std::vector<double> scratch;
  scratch.assign(values.begin(), values.end());
  std::sort(scratch.begin(), scratch.end());
  double best = scratch.front();
  std::size_t best_count = 0;
  std::size_t i = 0;
  while (i < scratch.size()) {
    std::size_t j = i;
    while (j < scratch.size() && scratch[j] == scratch[i]) ++j;
    if (j - i > best_count) {
      best_count = j - i;
      best = scratch[i];
    }
    i = j;
  }
  return best;
}

double mode_smallest_label(std::vector<double> values) {
  return mode_smallest_label(std::span<const double>(values));
}

// ---------------------------------------------------------------- PageRank

PageRank::PageRank(int iterations, double damping)
    : iterations_(iterations), damping_(damping) {
  G10_CHECK(iterations >= 1);
  G10_CHECK(damping > 0.0 && damping < 1.0);
}

std::string PageRank::name() const { return "PageRank"; }

double PageRank::initial_value(VertexId, const Graph& g) const {
  return 1.0 / static_cast<double>(g.vertex_count());
}

void PageRank::compute(VertexId v, double& value,
                       std::span<const double> messages, int superstep,
                       const Graph& g, PregelOutbox& out) const {
  const double n = static_cast<double>(g.vertex_count());
  if (superstep > 0) {
    double sum = 0.0;
    for (double m : messages) sum += m;
    value = (1.0 - damping_) / n + damping_ * sum;
  }
  if (superstep < iterations_) {
    const auto degree = g.out_degree(v);
    if (degree > 0) {
      out.send_to_all_neighbors = true;
      out.message = value / static_cast<double>(degree);
    }
  } else {
    out.vote_to_halt = true;
  }
}

bool PageRank::initially_active(VertexId, const Graph&) const { return true; }

double PageRank::apply(VertexId, double, std::span<const VertexId> neighbors,
                       std::span<const double> neighbor_values,
                       std::span<const double>, int, const Graph& g) const {
  const double n = static_cast<double>(g.vertex_count());
  double sum = 0.0;
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    sum += neighbor_values[i] / static_cast<double>(g.out_degree(neighbors[i]));
  }
  return (1.0 - damping_) / n + damping_ * sum;
}

bool PageRank::scatter_activates(VertexId, double, double, int iteration) const {
  return iteration + 1 < iterations_;
}

// --------------------------------------------------------------------- BFS

Bfs::Bfs(VertexId source) : source_(source) {}

std::string Bfs::name() const { return "BFS"; }

int Bfs::max_supersteps() const {
  // Diameter-bounded; a generous hard cap keeps runaway traces impossible.
  return 10'000;
}

int Bfs::max_iterations() const { return 10'000; }

double Bfs::initial_value(VertexId v, const Graph&) const {
  return v == source_ ? 0.0 : kInf;
}

void Bfs::compute(VertexId v, double& value, std::span<const double> messages,
                  int superstep, const Graph&, PregelOutbox& out) const {
  if (superstep == 0) {
    if (v == source_) {
      out.send_to_all_neighbors = true;
      out.message = 1.0;
    }
    out.vote_to_halt = true;
    return;
  }
  const double best = min_over(messages, kInf);
  if (best < value) {
    value = best;
    out.send_to_all_neighbors = true;
    out.message = value + 1.0;
  }
  out.vote_to_halt = true;
}

bool Bfs::initially_active(VertexId v, const Graph&) const {
  return v == source_;
}

double Bfs::apply(VertexId, double current, std::span<const VertexId>,
                  std::span<const double> neighbor_values,
                  std::span<const double>, int, const Graph&) const {
  // min(d_i + 1) == min(d_i) + 1 exactly: +1 is monotone, and equal results
  // are bitwise identical, so hoisting the add out of the fold is safe.
  return std::min(current, min_over(neighbor_values, kInf) + 1.0);
}

bool Bfs::scatter_activates(VertexId, double old_value, double new_value,
                            int iteration) const {
  // The source settles at distance 0 in iteration 0 without "improving";
  // it must still signal its neighbors to start the traversal.
  if (iteration == 0 && new_value == 0.0) return true;
  return new_value < old_value;
}

// --------------------------------------------------------------------- WCC

std::string Wcc::name() const { return "WCC"; }

int Wcc::max_supersteps() const { return 10'000; }
int Wcc::max_iterations() const { return 10'000; }

double Wcc::initial_value(VertexId v, const Graph&) const {
  return static_cast<double>(v);
}

void Wcc::compute(VertexId, double& value, std::span<const double> messages,
                  int superstep, const Graph&, PregelOutbox& out) const {
  if (superstep == 0) {
    out.send_to_all_neighbors = true;
    out.message = value;
    out.vote_to_halt = true;
    return;
  }
  const double best = min_over(messages, value);
  if (best < value) {
    value = best;
    out.send_to_all_neighbors = true;
    out.message = value;
  }
  out.vote_to_halt = true;
}

bool Wcc::initially_active(VertexId, const Graph&) const { return true; }

double Wcc::apply(VertexId, double current, std::span<const VertexId>,
                  std::span<const double> neighbor_values,
                  std::span<const double>, int, const Graph&) const {
  return min_over(neighbor_values, current);
}

bool Wcc::scatter_activates(VertexId, double old_value, double new_value,
                            int) const {
  return new_value < old_value;
}

// -------------------------------------------------------------------- CDLP

Cdlp::Cdlp(int iterations) : iterations_(iterations) {
  G10_CHECK(iterations >= 1);
}

std::string Cdlp::name() const { return "CDLP"; }

double Cdlp::initial_value(VertexId v, const Graph&) const {
  return static_cast<double>(v);
}

void Cdlp::compute(VertexId, double& value, std::span<const double> messages,
                   int superstep, const Graph&, PregelOutbox& out) const {
  if (superstep > 0 && !messages.empty()) {
    value = mode_smallest_label(messages);
  }
  if (superstep < iterations_) {
    out.send_to_all_neighbors = true;
    out.message = value;
  } else {
    out.vote_to_halt = true;
  }
}

bool Cdlp::initially_active(VertexId, const Graph&) const { return true; }

double Cdlp::apply(VertexId, double current, std::span<const VertexId>,
                   std::span<const double> neighbor_values,
                   std::span<const double>, int, const Graph&) const {
  if (neighbor_values.empty()) return current;
  return mode_smallest_label(neighbor_values);
}

bool Cdlp::scatter_activates(VertexId, double, double, int iteration) const {
  return iteration + 1 < iterations_;
}


// -------------------------------------------------------------------- SSSP

Sssp::Sssp(VertexId source) : source_(source) {}

std::string Sssp::name() const { return "SSSP"; }

int Sssp::max_supersteps() const { return 100'000; }
int Sssp::max_iterations() const { return 100'000; }

double Sssp::initial_value(VertexId v, const Graph&) const {
  return v == source_ ? 0.0 : kInf;
}

void Sssp::compute(VertexId v, double& value, std::span<const double> messages,
                   int superstep, const Graph&, PregelOutbox& out) const {
  if (superstep == 0) {
    if (v == source_) {
      out.send_to_all_neighbors = true;
      out.message = 0.0;
      out.add_edge_weight = true;
    }
    out.vote_to_halt = true;
    return;
  }
  const double best = min_over(messages, kInf);
  if (best < value) {
    value = best;
    out.send_to_all_neighbors = true;
    out.message = value;
    out.add_edge_weight = true;
  }
  out.vote_to_halt = true;
}

bool Sssp::initially_active(VertexId v, const Graph&) const {
  return v == source_;
}

double Sssp::apply(VertexId, double current, std::span<const VertexId>,
                   std::span<const double> neighbor_values,
                   std::span<const double> neighbor_weights, int,
                   const Graph&) const {
  if (neighbor_weights.empty()) {
    // Unweighted: every edge weighs 1, same fold as BFS.
    return std::min(current, min_over(neighbor_values, kInf) + 1.0);
  }
  double best = current;
  for (std::size_t i = 0; i < neighbor_values.size(); ++i) {
    best = std::min(best, neighbor_values[i] + neighbor_weights[i]);
  }
  return best;
}

bool Sssp::scatter_activates(VertexId, double old_value, double new_value,
                             int iteration) const {
  if (iteration == 0 && new_value == 0.0) return true;
  return new_value < old_value;
}

}  // namespace g10::algorithms
