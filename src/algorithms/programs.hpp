// The four algorithms of the paper's evaluation (§IV-A: two datasets × four
// algorithms), each implemented against both engine paradigms. A program
// object implements PregelProgram and GasProgram simultaneously so the same
// workload can be characterized on both systems (paper's Giraph-vs-
// PowerGraph comparison).
#pragma once

#include <memory>
#include <vector>

#include "algorithms/gas_program.hpp"
#include "algorithms/pregel_program.hpp"

namespace g10::algorithms {

/// Fixed-iteration PageRank (see reference.hpp for the recurrence).
class PageRank : public PregelProgram, public GasProgram {
 public:
  explicit PageRank(int iterations, double damping = 0.85);

  std::string name() const override;
  // PregelProgram
  Combiner combiner() const override { return Combiner::kSum; }
  int max_supersteps() const override { return iterations_ + 1; }
  double initial_value(graph::VertexId v, const graph::Graph& g) const override;
  void compute(graph::VertexId v, double& value,
               std::span<const double> messages, int superstep,
               const graph::Graph& g, PregelOutbox& out) const override;
  // GasProgram
  GatherEdges gather_edges() const override { return GatherEdges::kIn; }
  int max_iterations() const override { return iterations_; }
  bool initially_active(graph::VertexId v,
                        const graph::Graph& g) const override;
  double apply(graph::VertexId v, double current,
               std::span<const graph::VertexId> neighbors,
               std::span<const double> neighbor_values,
               std::span<const double> neighbor_weights, int iteration,
               const graph::Graph& g) const override;
  bool scatter_activates(graph::VertexId v, double old_value,
                         double new_value, int iteration) const override;

 private:
  int iterations_;
  double damping_;
};

/// BFS hop distances from a source vertex.
class Bfs : public PregelProgram, public GasProgram {
 public:
  explicit Bfs(graph::VertexId source);

  std::string name() const override;
  Combiner combiner() const override { return Combiner::kMin; }
  int max_supersteps() const override;
  double initial_value(graph::VertexId v, const graph::Graph& g) const override;
  void compute(graph::VertexId v, double& value,
               std::span<const double> messages, int superstep,
               const graph::Graph& g, PregelOutbox& out) const override;
  GatherEdges gather_edges() const override { return GatherEdges::kIn; }
  int max_iterations() const override;
  bool initially_active(graph::VertexId v,
                        const graph::Graph& g) const override;
  double apply(graph::VertexId v, double current,
               std::span<const graph::VertexId> neighbors,
               std::span<const double> neighbor_values,
               std::span<const double> neighbor_weights, int iteration,
               const graph::Graph& g) const override;
  bool scatter_activates(graph::VertexId v, double old_value,
                         double new_value, int iteration) const override;

 private:
  graph::VertexId source_;
};

/// Weakly connected components by min-label propagation. Run on
/// symmetrized graphs.
class Wcc : public PregelProgram, public GasProgram {
 public:
  Wcc() = default;

  std::string name() const override;
  Combiner combiner() const override { return Combiner::kMin; }
  int max_supersteps() const override;
  double initial_value(graph::VertexId v, const graph::Graph& g) const override;
  void compute(graph::VertexId v, double& value,
               std::span<const double> messages, int superstep,
               const graph::Graph& g, PregelOutbox& out) const override;
  GatherEdges gather_edges() const override { return GatherEdges::kIn; }
  int max_iterations() const override;
  bool initially_active(graph::VertexId v,
                        const graph::Graph& g) const override;
  double apply(graph::VertexId v, double current,
               std::span<const graph::VertexId> neighbors,
               std::span<const double> neighbor_values,
               std::span<const double> neighbor_weights, int iteration,
               const graph::Graph& g) const override;
  bool scatter_activates(graph::VertexId v, double old_value,
                         double new_value, int iteration) const override;
};

/// Community detection by label propagation, fixed iteration count.
class Cdlp : public PregelProgram, public GasProgram {
 public:
  explicit Cdlp(int iterations);

  std::string name() const override;
  Combiner combiner() const override { return Combiner::kNone; }
  int max_supersteps() const override { return iterations_ + 1; }
  double initial_value(graph::VertexId v, const graph::Graph& g) const override;
  void compute(graph::VertexId v, double& value,
               std::span<const double> messages, int superstep,
               const graph::Graph& g, PregelOutbox& out) const override;
  GatherEdges gather_edges() const override { return GatherEdges::kIn; }
  int max_iterations() const override { return iterations_; }
  bool initially_active(graph::VertexId v,
                        const graph::Graph& g) const override;
  double apply(graph::VertexId v, double current,
               std::span<const graph::VertexId> neighbors,
               std::span<const double> neighbor_values,
               std::span<const double> neighbor_weights, int iteration,
               const graph::Graph& g) const override;
  bool scatter_activates(graph::VertexId v, double old_value,
                         double new_value, int iteration) const override;

 private:
  int iterations_;
};

/// Single-source shortest paths on weighted graphs (unweighted edges count
/// as 1): synchronous Bellman-Ford relaxation in both paradigms.
class Sssp : public PregelProgram, public GasProgram {
 public:
  explicit Sssp(graph::VertexId source);

  std::string name() const override;
  Combiner combiner() const override { return Combiner::kMin; }
  int max_supersteps() const override;
  double initial_value(graph::VertexId v, const graph::Graph& g) const override;
  void compute(graph::VertexId v, double& value,
               std::span<const double> messages, int superstep,
               const graph::Graph& g, PregelOutbox& out) const override;
  GatherEdges gather_edges() const override { return GatherEdges::kIn; }
  int max_iterations() const override;
  bool initially_active(graph::VertexId v,
                        const graph::Graph& g) const override;
  double apply(graph::VertexId v, double current,
               std::span<const graph::VertexId> neighbors,
               std::span<const double> neighbor_values,
               std::span<const double> neighbor_weights, int iteration,
               const graph::Graph& g) const override;
  bool scatter_activates(graph::VertexId v, double old_value,
                         double new_value, int iteration) const override;

 private:
  graph::VertexId source_;
};

/// Most frequent value in `values`, ties to the smallest. Shared by CDLP's
/// engine programs and the reference implementation's tests. The span
/// overload copies into reused thread-local scratch instead of allocating a
/// fresh vector per call.
double mode_smallest_label(std::span<const double> values);
double mode_smallest_label(std::vector<double> values);

}  // namespace g10::algorithms
