// Single-threaded reference implementations of the four Graphalytics
// algorithms used in the paper's evaluation. Engine outputs are validated
// against these in the test suite.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace g10::algorithms {

/// Synchronous PageRank, `iterations` full updates, no dangling-mass
/// redistribution (matches the engine programs):
///   x^0 = 1/N;  x^s_v = (1-d)/N + d * sum_{u->v} x^{s-1}_u / outdeg(u).
std::vector<double> pagerank_reference(const graph::Graph& g, int iterations,
                                       double damping = 0.85);

/// BFS hop distance from `source` along out-edges; unreached = +infinity.
std::vector<double> bfs_reference(const graph::Graph& g,
                                  graph::VertexId source);

/// Weakly connected components as min-vertex-id labels. Expects a
/// symmetrized graph (Graphalytics runs WCC on undirected datasets).
std::vector<double> wcc_reference(const graph::Graph& g);

/// Dijkstra shortest paths from `source` along out-edges with the graph's
/// edge weights (1 when unweighted); unreached = +infinity. Weights must be
/// non-negative.
std::vector<double> sssp_reference(const graph::Graph& g,
                                   graph::VertexId source);

/// Synchronous community detection by label propagation (CDLP),
/// `iterations` rounds; label = most frequent in-neighbor label, ties to the
/// smallest label, vertices without in-neighbors keep their own.
std::vector<double> cdlp_reference(const graph::Graph& g, int iterations);

}  // namespace g10::algorithms
