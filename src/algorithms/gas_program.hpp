// Vertex-program interface for the GAS-style (PowerGraph stand-in) engine.
//
// Synchronous gather/apply/scatter semantics: in every iteration the engine
// gathers the values of each active vertex's neighbors (over the declared
// edge direction), calls apply() to produce the new value, and activates
// neighbors for the next iteration when scatter_activates() says the change
// is significant. Iteration 0 applies on the initially_active set.
#pragma once

#include <span>
#include <string>

#include "graph/graph.hpp"

namespace g10::algorithms {

enum class GatherEdges { kIn, kOut, kBoth };

class GasProgram {
 public:
  virtual ~GasProgram() = default;

  virtual std::string name() const = 0;
  virtual GatherEdges gather_edges() const = 0;
  virtual int max_iterations() const = 0;

  virtual double initial_value(graph::VertexId v,
                               const graph::Graph& g) const = 0;

  virtual bool initially_active(graph::VertexId v,
                                const graph::Graph& g) const = 0;

  /// New value of v from its current value and gathered neighbor values.
  /// `neighbors[i]` corresponds to `neighbor_values[i]` and, on weighted
  /// graphs, to `neighbor_weights[i]` (the weight of the gathered edge).
  /// On unweighted graphs `neighbor_weights` may be EMPTY — implementations
  /// must treat an empty span as every edge weighing 1.
  virtual double apply(graph::VertexId v, double current,
                       std::span<const graph::VertexId> neighbors,
                       std::span<const double> neighbor_values,
                       std::span<const double> neighbor_weights,
                       int iteration, const graph::Graph& g) const = 0;

  /// Whether the change at v activates v's neighbors next iteration.
  virtual bool scatter_activates(graph::VertexId v, double old_value,
                                 double new_value, int iteration) const = 0;
};

}  // namespace g10::algorithms
