// Vertex-program interface for the Pregel-style (Giraph stand-in) engine.
//
// Semantics follow Giraph's BSP model: in superstep 0 every vertex is active
// and receives no messages; in later supersteps a vertex runs compute() iff
// it is active (did not halt) or received messages. Messages sent in
// superstep s are delivered in superstep s+1. A program sends the same value
// to all out-neighbors (sufficient for the paper's four algorithms) and may
// declare a combiner so the engine aggregates concurrent messages.
#pragma once

#include <span>
#include <string>

#include "graph/graph.hpp"

namespace g10::algorithms {

enum class Combiner {
  kNone,  ///< deliver the full message list (e.g. CDLP needs all labels)
  kSum,   ///< deliver one message: the sum
  kMin,   ///< deliver one message: the minimum
};

/// Out-parameters of one compute() call.
struct PregelOutbox {
  bool send_to_all_neighbors = false;
  double message = 0.0;
  /// When set, each neighbor receives message + weight(edge to neighbor)
  /// (distance relaxation for SSSP on weighted graphs).
  bool add_edge_weight = false;
  bool vote_to_halt = false;
};

class PregelProgram {
 public:
  virtual ~PregelProgram() = default;

  virtual std::string name() const = 0;
  virtual Combiner combiner() const = 0;

  /// Hard cap on supersteps (the engine also stops when no vertex is active
  /// and no messages are in flight).
  virtual int max_supersteps() const = 0;

  virtual double initial_value(graph::VertexId v,
                               const graph::Graph& g) const = 0;

  /// One vertex update. `messages` holds the combined value (size <= 1) for
  /// kSum/kMin combiners, or every received message for kNone.
  virtual void compute(graph::VertexId v, double& value,
                       std::span<const double> messages, int superstep,
                       const graph::Graph& g, PregelOutbox& out) const = 0;
};

}  // namespace g10::algorithms
