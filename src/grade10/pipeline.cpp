#include "grade10/pipeline.hpp"

#include <utility>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace g10::core {

CheckedCharacterization characterize_checked(
    const CharacterizationInput& input) {
  CheckedCharacterization out;
  auto& errors = out.status.errors;
  if (input.model == nullptr) errors.push_back("missing execution model");
  if (input.resources == nullptr) errors.push_back("missing resource model");
  if (input.rules == nullptr) errors.push_back("missing attribution rules");
  if (!errors.empty()) return out;

  const TimesliceGrid grid(input.config.timeslice);
  CharacterizationResult result;
  result.grid = grid;
  try {
    result.trace = ExecutionTrace::build(*input.model, *input.resources,
                                         input.phase_events,
                                         input.blocking_events,
                                         input.trace_options);
  } catch (const CheckError& e) {
    errors.push_back(std::string("trace ingestion failed: ") + e.what());
    return out;
  }
  out.status.warnings = result.trace.warnings();
  try {
    // One executor shared by every downstream stage; a 1-thread pool spawns
    // no workers and every fan-out runs inline on this thread.
    ThreadPool pool(ThreadPool::Options{
        input.config.threads > 0
            ? static_cast<std::size_t>(input.config.threads)
            : 0,
        4096});
    ThreadPool* executor = pool.thread_count() > 1 ? &pool : nullptr;
    ResourceTrace::Options monitor_options;
    monitor_options.ignore_unknown_resources =
        input.trace_options.ignore_unknown_blocking;
    result.monitored =
        ResourceTrace::build(*input.resources, input.samples, monitor_options);
    result.demand = estimate_demand(*input.resources, *input.rules,
                                    result.trace, grid, executor);
    result.usage = attribute_usage(result.demand, result.monitored, grid,
                                   /*constant_strawman=*/false, executor);
    result.bottlenecks = detect_bottlenecks(result.usage, result.trace, grid,
                                            input.config, executor);
    IssueDetector detector(*input.model, *input.resources, result.trace, grid,
                           input.config);
    result.issues =
        detector.detect(result.usage, result.bottlenecks, executor);
    result.baseline_makespan = detector.baseline_makespan();
  } catch (const CheckError& e) {
    // The trace itself is intact; return it so callers can still inspect
    // the run's structure even though the characterization is partial.
    errors.push_back(std::string("characterization failed: ") + e.what());
    out.result = std::move(result);
    return out;
  }
  out.result = std::move(result);
  return out;
}

CharacterizationResult characterize(const CharacterizationInput& input) {
  G10_CHECK(input.model != nullptr);
  G10_CHECK(input.resources != nullptr);
  G10_CHECK(input.rules != nullptr);
  CheckedCharacterization checked = characterize_checked(input);
  G10_CHECK_MSG(checked.status.ok() && checked.result.has_value(),
                (checked.status.errors.empty()
                     ? std::string("characterization failed")
                     : checked.status.errors.front()));
  return std::move(*checked.result);
}

}  // namespace g10::core
