#include "grade10/pipeline.hpp"

#include "common/check.hpp"

namespace g10::core {

CharacterizationResult characterize(const CharacterizationInput& input) {
  G10_CHECK(input.model != nullptr);
  G10_CHECK(input.resources != nullptr);
  G10_CHECK(input.rules != nullptr);

  const TimesliceGrid grid(input.config.timeslice);
  CharacterizationResult result;
  result.grid = grid;
  result.trace =
      ExecutionTrace::build(*input.model, *input.resources, input.phase_events,
                            input.blocking_events, input.trace_options);
  ResourceTrace::Options monitor_options;
  monitor_options.ignore_unknown_resources =
      input.trace_options.ignore_unknown_blocking;
  result.monitored =
      ResourceTrace::build(*input.resources, input.samples, monitor_options);
  result.demand =
      estimate_demand(*input.resources, *input.rules, result.trace, grid);
  result.usage = attribute_usage(result.demand, result.monitored, grid);
  result.bottlenecks =
      detect_bottlenecks(result.usage, result.trace, grid, input.config);
  IssueDetector detector(*input.model, *input.resources, result.trace, grid,
                         input.config);
  result.issues = detector.detect(result.usage, result.bottlenecks);
  result.baseline_makespan = detector.baseline_makespan();
  return result;
}

}  // namespace g10::core
