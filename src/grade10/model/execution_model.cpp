#include "grade10/model/execution_model.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace g10::core {

PhaseTypeId ExecutionModel::add_root(std::string name) {
  G10_CHECK_MSG(types_.empty(), "execution model already has a root");
  PhaseType root;
  root.name = std::move(name);
  types_.push_back(std::move(root));
  return 0;
}

PhaseTypeId ExecutionModel::add_child(PhaseTypeId parent, std::string name,
                                      bool repeated) {
  G10_CHECK(parent >= 0 && static_cast<std::size_t>(parent) < types_.size());
  G10_CHECK_MSG(find(name) == kNoPhaseType,
                "duplicate phase type name: " << name);
  const auto id = static_cast<PhaseTypeId>(types_.size());
  PhaseType type;
  type.name = std::move(name);
  type.parent = parent;
  type.repeated = repeated;
  types_.push_back(std::move(type));
  types_[static_cast<std::size_t>(parent)].children.push_back(id);
  return id;
}

void ExecutionModel::add_order(PhaseTypeId before, PhaseTypeId after) {
  G10_CHECK(before >= 0 && static_cast<std::size_t>(before) < types_.size());
  G10_CHECK(after >= 0 && static_cast<std::size_t>(after) < types_.size());
  G10_CHECK_MSG(types_[static_cast<std::size_t>(before)].parent ==
                    types_[static_cast<std::size_t>(after)].parent,
                "order edges must connect siblings");
  G10_CHECK(before != after);
  types_[static_cast<std::size_t>(before)].successors.push_back(after);
  types_[static_cast<std::size_t>(after)].predecessors.push_back(before);
}

void ExecutionModel::set_concurrency_limit(PhaseTypeId type, int limit) {
  G10_CHECK(type >= 0 && static_cast<std::size_t>(type) < types_.size());
  G10_CHECK(limit >= 0);
  types_[static_cast<std::size_t>(type)].concurrency_limit = limit;
}

void ExecutionModel::set_wait(PhaseTypeId type, bool wait) {
  G10_CHECK(type >= 0 && static_cast<std::size_t>(type) < types_.size());
  types_[static_cast<std::size_t>(type)].wait = wait;
}

const PhaseType& ExecutionModel::type(PhaseTypeId id) const {
  G10_CHECK(id >= 0 && static_cast<std::size_t>(id) < types_.size());
  return types_[static_cast<std::size_t>(id)];
}

PhaseTypeId ExecutionModel::find(std::string_view name) const {
  for (std::size_t i = 0; i < types_.size(); ++i) {
    if (types_[i].name == name) return static_cast<PhaseTypeId>(i);
  }
  return kNoPhaseType;
}

void ExecutionModel::validate() const {
  G10_CHECK_MSG(!types_.empty(), "execution model is empty");
  G10_CHECK(types_.front().parent == kNoPhaseType);
  for (std::size_t i = 1; i < types_.size(); ++i) {
    G10_CHECK_MSG(types_[i].parent != kNoPhaseType,
                  "multiple roots in execution model");
  }
  // Sibling order must be acyclic: Kahn's algorithm per sibling group.
  for (const auto& parent : types_) {
    const auto& group = parent.children;
    if (group.size() < 2) continue;
    std::vector<int> indegree(group.size(), 0);
    const auto local = [&](PhaseTypeId id) {
      const auto it = std::find(group.begin(), group.end(), id);
      return it == group.end()
                 ? static_cast<std::size_t>(-1)
                 : static_cast<std::size_t>(it - group.begin());
    };
    for (std::size_t gi = 0; gi < group.size(); ++gi) {
      for (PhaseTypeId succ : type(group[gi]).successors) {
        const std::size_t li = local(succ);
        G10_CHECK(li != static_cast<std::size_t>(-1));
        ++indegree[li];
      }
    }
    std::vector<std::size_t> ready;
    for (std::size_t gi = 0; gi < group.size(); ++gi) {
      if (indegree[gi] == 0) ready.push_back(gi);
    }
    std::size_t seen = 0;
    while (!ready.empty()) {
      const std::size_t gi = ready.back();
      ready.pop_back();
      ++seen;
      for (PhaseTypeId succ : type(group[gi]).successors) {
        const std::size_t li = local(succ);
        if (--indegree[li] == 0) ready.push_back(li);
      }
    }
    G10_CHECK_MSG(seen == group.size(),
                  "cycle in sibling order under type " << parent.name);
  }
}

}  // namespace g10::core
