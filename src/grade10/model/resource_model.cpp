#include "grade10/model/resource_model.hpp"

#include "common/check.hpp"

namespace g10::core {

ResourceId ResourceModel::add(Resource resource) {
  G10_CHECK_MSG(find(resource.name) == kNoResource,
                "duplicate resource name: " << resource.name);
  resources_.push_back(std::move(resource));
  return static_cast<ResourceId>(resources_.size() - 1);
}

ResourceId ResourceModel::add_consumable(std::string name, double capacity,
                                         ResourceScope scope) {
  G10_CHECK_MSG(capacity > 0.0, "consumable resources need a capacity");
  Resource r;
  r.name = std::move(name);
  r.kind = ResourceKind::kConsumable;
  r.scope = scope;
  r.capacity = capacity;
  return add(std::move(r));
}

ResourceId ResourceModel::add_blocking(std::string name, ResourceScope scope) {
  Resource r;
  r.name = std::move(name);
  r.kind = ResourceKind::kBlocking;
  r.scope = scope;
  return add(std::move(r));
}

ResourceId ResourceModel::find(std::string_view name) const {
  for (std::size_t i = 0; i < resources_.size(); ++i) {
    if (resources_[i].name == name) return static_cast<ResourceId>(i);
  }
  return kNoResource;
}

const Resource& ResourceModel::resource(ResourceId id) const {
  G10_CHECK(id >= 0 && static_cast<std::size_t>(id) < resources_.size());
  return resources_[static_cast<std::size_t>(id)];
}

std::vector<ResourceId> ResourceModel::consumables() const {
  std::vector<ResourceId> out;
  for (std::size_t i = 0; i < resources_.size(); ++i) {
    if (resources_[i].kind == ResourceKind::kConsumable) {
      out.push_back(static_cast<ResourceId>(i));
    }
  }
  return out;
}

std::vector<ResourceId> ResourceModel::blockings() const {
  std::vector<ResourceId> out;
  for (std::size_t i = 0; i < resources_.size(); ++i) {
    if (resources_[i].kind == ResourceKind::kBlocking) {
      out.push_back(static_cast<ResourceId>(i));
    }
  }
  return out;
}

}  // namespace g10::core
