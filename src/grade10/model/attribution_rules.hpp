// Resource attribution rules (paper §III-D1).
//
// A rule links the demand of one phase type for one resource:
//  - None:        the phase does not use the resource;
//  - Exact(a):    the phase demands exactly `a` units while active
//                 (e.g. one CPU core per active compute thread);
//  - Variable(w): the phase uses as much as it can get, with relative
//                 weight `w` against other variable phases.
//
// Per the paper, when no rule is given for a (phase, resource) pair the
// default is an implicit Variable(1) rule; an expert-tuned model overrides
// pairs with Exact / None / weighted Variable rules.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "grade10/model/execution_model.hpp"
#include "grade10/model/resource_model.hpp"

namespace g10::core {

struct AttributionRule {
  enum class Kind : std::uint8_t { kNone, kExact, kVariable };
  Kind kind = Kind::kVariable;
  /// Exact: demand in resource units. Variable: relative weight.
  double amount = 1.0;

  static AttributionRule none() { return {Kind::kNone, 0.0}; }
  static AttributionRule exact(double units) { return {Kind::kExact, units}; }
  static AttributionRule variable(double weight = 1.0) {
    return {Kind::kVariable, weight};
  }

  bool is_none() const { return kind == Kind::kNone; }
  bool is_exact() const { return kind == Kind::kExact; }
  bool is_variable() const { return kind == Kind::kVariable; }

  friend bool operator==(const AttributionRule&,
                         const AttributionRule&) = default;
};

class AttributionRuleSet {
 public:
  /// `default_rule` applies to every pair without an explicit entry.
  explicit AttributionRuleSet(
      AttributionRule default_rule = AttributionRule::variable(1.0))
      : default_rule_(default_rule) {}

  void set(PhaseTypeId phase, ResourceId resource, AttributionRule rule);
  AttributionRule get(PhaseTypeId phase, ResourceId resource) const;

  const AttributionRule& default_rule() const { return default_rule_; }
  std::size_t explicit_rule_count() const { return rules_.size(); }

  /// All explicit entries, keyed (phase, resource); for serialization.
  const std::map<std::pair<PhaseTypeId, ResourceId>, AttributionRule>&
  explicit_rules() const {
    return rules_;
  }

 private:
  AttributionRule default_rule_;
  std::map<std::pair<PhaseTypeId, ResourceId>, AttributionRule> rules_;
};

}  // namespace g10::core
