#include "grade10/model/attribution_rules.hpp"

#include "common/check.hpp"

namespace g10::core {

void AttributionRuleSet::set(PhaseTypeId phase, ResourceId resource,
                             AttributionRule rule) {
  G10_CHECK(phase >= 0);
  G10_CHECK(resource >= 0);
  if (rule.is_exact()) G10_CHECK_MSG(rule.amount > 0.0, "Exact demand must be positive");
  if (rule.is_variable()) {
    G10_CHECK_MSG(rule.amount > 0.0, "Variable weight must be positive");
  }
  rules_[{phase, resource}] = rule;
}

AttributionRule AttributionRuleSet::get(PhaseTypeId phase,
                                        ResourceId resource) const {
  const auto it = rules_.find({phase, resource});
  return it == rules_.end() ? default_rule_ : it->second;
}

}  // namespace g10::core
