// Text serialization of the expert input (paper §III-B): execution model,
// resource model, and attribution rules in one declarative file, so a model
// can be written once per framework and shipped/reused without recompiling
// (the original Grade10 uses declarative per-framework configuration the
// same way).
//
// Format — one statement per line, '#' comments:
//   PHASE <name>                                  (first PHASE is the root)
//   PHASE <name> PARENT=<name> [REPEATED] [WAIT] [LIMIT=<n>]
//   ORDER <before> <after>
//   RESOURCE <name> CONSUMABLE CAPACITY=<x> [GLOBAL]
//   RESOURCE <name> BLOCKING [GLOBAL]
//   DEFAULT NONE | DEFAULT VARIABLE <w>
//   RULE <phase> <resource> NONE
//   RULE <phase> <resource> EXACT <units>
//   RULE <phase> <resource> VARIABLE <weight>
#pragma once

#include <istream>
#include <optional>
#include <ostream>
#include <string>

#include "grade10/model/attribution_rules.hpp"
#include "grade10/model/execution_model.hpp"
#include "grade10/model/resource_model.hpp"

namespace g10::core {

/// The complete expert input for one framework.
struct ModelDescription {
  ExecutionModel execution;
  ResourceModel resources;
  AttributionRuleSet rules;
};

/// Serializes a model description; parse_model() reads it back.
/// Note: the rule set's explicit entries are written via a callback over
/// all (phase, resource) pairs, so the output is complete by construction.
void write_model(std::ostream& os, const ExecutionModel& execution,
                 const ResourceModel& resources,
                 const AttributionRuleSet& rules);

struct ModelParseError {
  std::size_t line_number = 0;
  std::string message;
};

struct ModelParseResult {
  ModelDescription model;
  std::optional<ModelParseError> error;

  bool ok() const { return !error.has_value(); }
};

ModelParseResult parse_model(std::istream& is);

}  // namespace g10::core
