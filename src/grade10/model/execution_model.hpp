// Execution model (paper §III-B): a hierarchical DAG of phase *types*.
//
// Nodes are phase types; the hierarchy decomposes high-level phases into
// lower-level ones, and directed edges between siblings express execution
// order. A type may be `repeated` (its instances under one parent run
// sequentially, e.g. supersteps), carry a per-parent concurrency limit
// (e.g. at most T ComputeThread instances run at once — the paper's
// scheduling constraint), or be a `wait` type (barrier-wait phases whose
// duration is slack, not work; the replay simulator gives them zero
// duration and re-derives the waiting from its schedule).
//
// The model is defined once per framework by a domain expert and reused
// across workloads; grade10/models/ ships the models for the two bundled
// engines.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace g10::core {

using PhaseTypeId = std::int32_t;
inline constexpr PhaseTypeId kNoPhaseType = -1;

struct PhaseType {
  std::string name;
  PhaseTypeId parent = kNoPhaseType;
  bool repeated = false;
  bool wait = false;
  int concurrency_limit = 0;  ///< max concurrent instances per parent; 0 = off
  std::vector<PhaseTypeId> children;
  std::vector<PhaseTypeId> predecessors;  ///< sibling order edges (into this)
  std::vector<PhaseTypeId> successors;
};

class ExecutionModel {
 public:
  /// Adds the root type; must be called exactly once, first.
  PhaseTypeId add_root(std::string name);

  /// Adds a child type under `parent`. Type names must be globally unique.
  PhaseTypeId add_child(PhaseTypeId parent, std::string name,
                        bool repeated = false);

  /// Declares that instances of `before` precede matching instances of
  /// `after`. Both must share a parent.
  void add_order(PhaseTypeId before, PhaseTypeId after);

  void set_concurrency_limit(PhaseTypeId type, int limit);
  void set_wait(PhaseTypeId type, bool wait = true);

  PhaseTypeId root() const { return types_.empty() ? kNoPhaseType : 0; }
  std::size_t type_count() const { return types_.size(); }
  const PhaseType& type(PhaseTypeId id) const;

  /// Looks a type up by name; kNoPhaseType if absent.
  PhaseTypeId find(std::string_view name) const;

  /// Checks structural invariants: exactly one root, acyclic sibling order,
  /// parent linkage consistent. Throws CheckError on violation.
  void validate() const;

 private:
  std::vector<PhaseType> types_;
};

}  // namespace g10::core
