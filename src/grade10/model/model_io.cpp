#include "grade10/model/model_io.hpp"

#include <map>
#include <vector>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace g10::core {

void write_model(std::ostream& os, const ExecutionModel& execution,
                 const ResourceModel& resources,
                 const AttributionRuleSet& rules) {
  os << "# grade10 model v1\n";
  for (PhaseTypeId id = 0; id < static_cast<PhaseTypeId>(execution.type_count());
       ++id) {
    const PhaseType& type = execution.type(id);
    os << "PHASE " << type.name;
    if (type.parent != kNoPhaseType) {
      os << " PARENT=" << execution.type(type.parent).name;
    }
    if (type.repeated) os << " REPEATED";
    if (type.wait) os << " WAIT";
    if (type.concurrency_limit > 0) os << " LIMIT=" << type.concurrency_limit;
    os << '\n';
  }
  for (PhaseTypeId id = 0; id < static_cast<PhaseTypeId>(execution.type_count());
       ++id) {
    for (const PhaseTypeId succ : execution.type(id).successors) {
      os << "ORDER " << execution.type(id).name << ' '
         << execution.type(succ).name << '\n';
    }
  }
  for (ResourceId id = 0;
       id < static_cast<ResourceId>(resources.resource_count()); ++id) {
    const Resource& resource = resources.resource(id);
    os << "RESOURCE " << resource.name << ' ';
    if (resource.kind == ResourceKind::kConsumable) {
      os << "CONSUMABLE CAPACITY=" << format_fixed(resource.capacity, 6);
    } else {
      os << "BLOCKING";
    }
    if (resource.scope == ResourceScope::kGlobal) os << " GLOBAL";
    os << '\n';
  }
  const AttributionRule& dflt = rules.default_rule();
  if (dflt.is_none()) {
    os << "DEFAULT NONE\n";
  } else if (dflt.is_variable()) {
    os << "DEFAULT VARIABLE " << format_fixed(dflt.amount, 6) << '\n';
  }
  for (const auto& [key, rule] : rules.explicit_rules()) {
    os << "RULE " << execution.type(key.first).name << ' '
       << resources.resource(key.second).name << ' ';
    if (rule.is_none()) {
      os << "NONE";
    } else if (rule.is_exact()) {
      os << "EXACT " << format_fixed(rule.amount, 6);
    } else {
      os << "VARIABLE " << format_fixed(rule.amount, 6);
    }
    os << '\n';
  }
}

namespace {

struct Parser {
  ModelDescription model;
  std::optional<std::string> error;

  std::optional<std::string> phase(const std::vector<std::string_view>& f) {
    if (f.size() < 2) return "PHASE needs a name";
    const std::string name(f[1]);
    PhaseTypeId parent = kNoPhaseType;
    bool repeated = false;
    bool wait = false;
    int limit = 0;
    for (std::size_t i = 2; i < f.size(); ++i) {
      const std::string_view arg = f[i];
      if (arg == "REPEATED") {
        repeated = true;
      } else if (arg == "WAIT") {
        wait = true;
      } else if (starts_with(arg, "PARENT=")) {
        parent = model.execution.find(arg.substr(7));
        if (parent == kNoPhaseType) {
          return "unknown parent phase: " + std::string(arg.substr(7));
        }
      } else if (starts_with(arg, "LIMIT=")) {
        const auto value = parse_int(arg.substr(6));
        if (!value || *value <= 0) return "bad LIMIT value";
        limit = static_cast<int>(*value);
      } else {
        return "unknown PHASE attribute: " + std::string(arg);
      }
    }
    if (model.execution.type_count() == 0) {
      if (parent != kNoPhaseType) return "the first PHASE must be the root";
      model.execution.add_root(name);
      return std::nullopt;
    }
    if (parent == kNoPhaseType) return "non-root PHASE needs PARENT=";
    if (model.execution.find(name) != kNoPhaseType) {
      return "duplicate phase name: " + name;
    }
    const PhaseTypeId id = model.execution.add_child(parent, name, repeated);
    if (wait) model.execution.set_wait(id);
    if (limit > 0) model.execution.set_concurrency_limit(id, limit);
    return std::nullopt;
  }

  std::optional<std::string> order(const std::vector<std::string_view>& f) {
    if (f.size() != 3) return "ORDER needs two phase names";
    const PhaseTypeId before = model.execution.find(f[1]);
    const PhaseTypeId after = model.execution.find(f[2]);
    if (before == kNoPhaseType || after == kNoPhaseType) {
      return "ORDER references unknown phase";
    }
    if (model.execution.type(before).parent !=
        model.execution.type(after).parent) {
      return "ORDER phases must be siblings";
    }
    model.execution.add_order(before, after);
    return std::nullopt;
  }

  std::optional<std::string> resource(const std::vector<std::string_view>& f) {
    if (f.size() < 3) return "RESOURCE needs a name and a kind";
    const std::string name(f[1]);
    if (model.resources.find(name) != kNoResource) {
      return "duplicate resource name: " + name;
    }
    ResourceScope scope = ResourceScope::kPerMachine;
    for (std::size_t i = 3; i < f.size(); ++i) {
      if (f[i] == "GLOBAL") {
        scope = ResourceScope::kGlobal;
      } else if (f[2] == "CONSUMABLE" && starts_with(f[i], "CAPACITY=")) {
        // handled below
      } else {
        return "unknown RESOURCE attribute: " + std::string(f[i]);
      }
    }
    if (f[2] == "BLOCKING") {
      model.resources.add_blocking(name, scope);
      return std::nullopt;
    }
    if (f[2] != "CONSUMABLE") return "RESOURCE kind must be CONSUMABLE or BLOCKING";
    std::optional<double> capacity;
    for (std::size_t i = 3; i < f.size(); ++i) {
      if (starts_with(f[i], "CAPACITY=")) capacity = parse_double(f[i].substr(9));
    }
    if (!capacity || *capacity <= 0.0) {
      return "CONSUMABLE resource needs CAPACITY=<positive>";
    }
    model.resources.add_consumable(name, *capacity, scope);
    return std::nullopt;
  }

  std::optional<std::string> parse_rule_spec(
      const std::vector<std::string_view>& f, std::size_t at,
      AttributionRule& out) {
    if (f[at] == "NONE") {
      if (f.size() != at + 1) return "NONE takes no argument";
      out = AttributionRule::none();
      return std::nullopt;
    }
    if (f.size() != at + 2) return "rule needs exactly one numeric argument";
    const auto amount = parse_double(f[at + 1]);
    if (!amount || *amount <= 0.0) return "rule amount must be positive";
    if (f[at] == "EXACT") {
      out = AttributionRule::exact(*amount);
    } else if (f[at] == "VARIABLE") {
      out = AttributionRule::variable(*amount);
    } else {
      return "rule kind must be NONE, EXACT or VARIABLE";
    }
    return std::nullopt;
  }

  std::optional<std::string> rule(const std::vector<std::string_view>& f) {
    if (f.size() < 4) return "RULE needs <phase> <resource> <spec>";
    const PhaseTypeId phase = model.execution.find(f[1]);
    if (phase == kNoPhaseType) {
      return "RULE references unknown phase: " + std::string(f[1]);
    }
    const ResourceId resource = model.resources.find(f[2]);
    if (resource == kNoResource) {
      return "RULE references unknown resource: " + std::string(f[2]);
    }
    AttributionRule spec;
    if (auto err = parse_rule_spec(f, 3, spec)) return err;
    model.rules.set(phase, resource, spec);
    return std::nullopt;
  }

  std::optional<std::string> default_rule(
      const std::vector<std::string_view>& f) {
    AttributionRule spec;
    if (f.size() < 2) return "DEFAULT needs a rule spec";
    if (auto err = parse_rule_spec(f, 1, spec)) return err;
    if (spec.is_exact()) return "DEFAULT cannot be EXACT";
    // Re-seat the rule set, keeping explicit entries (none exist yet if
    // DEFAULT comes first, which the writer guarantees; otherwise copy).
    AttributionRuleSet replacement(spec);
    for (const auto& [key, value] : model.rules.explicit_rules()) {
      replacement.set(key.first, key.second, value);
    }
    model.rules = std::move(replacement);
    return std::nullopt;
  }
};

}  // namespace

ModelParseResult parse_model(std::istream& is) {
  ModelParseResult result;
  Parser parser;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    // Statements are whitespace-separated tokens.
    std::vector<std::string_view> fields;
    for (const auto part : split(trimmed, ' ')) {
      const auto token = trim(part);
      if (!token.empty()) fields.push_back(token);
    }
    std::optional<std::string> error;
    if (fields[0] == "PHASE") {
      error = parser.phase(fields);
    } else if (fields[0] == "ORDER") {
      error = parser.order(fields);
    } else if (fields[0] == "RESOURCE") {
      error = parser.resource(fields);
    } else if (fields[0] == "RULE") {
      error = parser.rule(fields);
    } else if (fields[0] == "DEFAULT") {
      error = parser.default_rule(fields);
    } else {
      error = "unknown statement: " + std::string(fields[0]);
    }
    if (error) {
      result.error = ModelParseError{line_number, *error};
      return result;
    }
  }
  if (parser.model.execution.type_count() == 0) {
    result.error = ModelParseError{line_number, "model has no phases"};
    return result;
  }
  try {
    parser.model.execution.validate();
  } catch (const CheckError& e) {
    result.error = ModelParseError{line_number, e.what()};
    return result;
  }
  result.model = std::move(parser.model);
  return result;
}

}  // namespace g10::core
