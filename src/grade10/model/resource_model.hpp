// Resource model (paper §III-B): the hardware and software resources of the
// system under test, in two archetypes — consumable resources with a finite
// capacity (CPU cores, network bandwidth) and blocking resources that stall
// a phase while unavailable (GC, bounded queues, locks).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace g10::core {

using ResourceId = std::int32_t;
inline constexpr ResourceId kNoResource = -1;

enum class ResourceKind { kConsumable, kBlocking };

/// Whether the resource exists once per machine (CPU, NIC) or once in the
/// whole system (e.g. a shared lock service).
enum class ResourceScope { kPerMachine, kGlobal };

struct Resource {
  std::string name;
  ResourceKind kind = ResourceKind::kConsumable;
  ResourceScope scope = ResourceScope::kPerMachine;
  /// Capacity in the resource's own units (cores, bytes/s). Blocking
  /// resources have no capacity.
  double capacity = 0.0;
};

class ResourceModel {
 public:
  ResourceId add_consumable(std::string name, double capacity,
                            ResourceScope scope = ResourceScope::kPerMachine);
  ResourceId add_blocking(std::string name,
                          ResourceScope scope = ResourceScope::kPerMachine);

  ResourceId find(std::string_view name) const;
  const Resource& resource(ResourceId id) const;
  std::size_t resource_count() const { return resources_.size(); }
  const std::vector<Resource>& resources() const { return resources_; }

  std::vector<ResourceId> consumables() const;
  std::vector<ResourceId> blockings() const;

 private:
  ResourceId add(Resource resource);
  std::vector<Resource> resources_;
};

}  // namespace g10::core
