// Tunables of the Grade10 analysis pipeline.
#pragma once

#include <string>
#include <vector>

#include "common/time.hpp"

namespace g10::core {

struct AnalysisConfig {
  /// Timeslice duration (paper §III-C; tens of milliseconds in practice).
  DurationNs timeslice = 10 * kMillisecond;

  /// Total analysis concurrency (workers + the calling thread) for the
  /// pipeline stages that fan out per (resource, machine) / per candidate
  /// issue. 0 = auto: the G10_THREADS environment variable if set, else
  /// the hardware thread count. 1 = fully serial (no pool threads).
  /// Results are bit-identical at every setting.
  int threads = 0;

  /// A consumable resource counts as saturated in a slice when its
  /// upsampled utilization reaches this fraction of capacity...
  double saturation_threshold = 0.97;
  /// ...for at least this many consecutive slices ("extended periods").
  int min_saturation_slices = 1;

  /// A phase with an Exact rule counts as self-limited in a slice when its
  /// attributed usage reaches this fraction of its own demand.
  double exact_cap_threshold = 0.85;

  /// Performance issues below this makespan-reduction fraction are dropped
  /// (the paper's "arbitrary minimum threshold").
  double min_issue_impact = 0.01;

  /// When simulating the removal of a resource bottleneck, a bottlenecked
  /// slice shrinks to the utilization of the next-binding resource, but
  /// never below this floor.
  double min_shrink_fraction = 0.02;

  /// Blocking resources that represent fault handling (crash recovery,
  /// send retries). Their blocked time is reported as a single
  /// fault-recovery issue measured directly on the trace, not through the
  /// replay simulator: recovery phases are wait-type, so a replay that
  /// zeroes them would understate the real cost.
  std::vector<std::string> fault_resources{"Recovery", "Retry"};
};

}  // namespace g10::core
