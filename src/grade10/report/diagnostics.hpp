// Resource-usage diagnostics beyond bottlenecks: burstiness and cross-
// machine skew. The paper positions Grade10's fine-grained attribution as
// capturing exactly the phenomena coarse monitoring averages away (§VI,
// comparison with Tian et al.: "burstiness, imbalance"); these summaries
// quantify them from the upsampled profile.
#pragma once

#include <ostream>
#include <vector>

#include "grade10/attribution/attributor.hpp"

namespace g10::core {

struct ResourceDiagnostics {
  ResourceId resource = kNoResource;
  trace::MachineId machine = trace::kGlobalMachine;
  double mean_utilization = 0.0;
  /// Share of total consumption concentrated in the busiest 10% of slices,
  /// normalized by 0.10: 1.0 = perfectly smooth, 10 = everything in bursts.
  double burstiness = 0.0;
  /// Fraction of slices with utilization below 5%.
  double idle_fraction = 0.0;
};

std::vector<ResourceDiagnostics> compute_resource_diagnostics(
    const AttributedUsage& usage);

struct SkewDiagnostics {
  ResourceId resource = kNoResource;
  /// max over machines of (machine total / mean machine total); 1 = even.
  double max_over_mean = 1.0;
  /// Coefficient of variation of per-machine totals.
  double cov = 0.0;
};

/// Per-machine totals of each per-machine resource, compared across the
/// cluster (the Ganglia-style "skewed load across machines" view).
std::vector<SkewDiagnostics> compute_machine_skew(
    const AttributedUsage& usage);

void render_diagnostics(std::ostream& os, const ResourceModel& resources,
                        const std::vector<ResourceDiagnostics>& per_resource,
                        const std::vector<SkewDiagnostics>& skew);

}  // namespace g10::core
