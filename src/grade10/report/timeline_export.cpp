#include "grade10/report/timeline_export.hpp"

#include <algorithm>
#include <map>
#include <vector>

namespace g10::core {

namespace {

/// Greedy interval packing: the first lane whose last event ended by
/// `begin` hosts the next instance; lanes are per machine.
struct LaneAllocator {
  std::vector<TimeNs> lane_end;

  int assign(TimeNs begin, TimeNs end) {
    for (std::size_t lane = 0; lane < lane_end.size(); ++lane) {
      if (lane_end[lane] <= begin) {
        lane_end[lane] = end;
        return static_cast<int>(lane);
      }
    }
    lane_end.push_back(end);
    return static_cast<int>(lane_end.size()) - 1;
  }
};

void write_event(std::ostream& os, bool& first, const std::string& name,
                 const char* category, TimeNs begin, DurationNs duration,
                 int pid, int tid) {
  if (!first) os << ",\n";
  first = false;
  // Chrome tracing uses microsecond timestamps.
  os << R"(  {"name": ")" << name << R"(", "cat": ")" << category
     << R"(", "ph": "X", "ts": )" << static_cast<double>(begin) / 1e3
     << R"(, "dur": )" << static_cast<double>(duration) / 1e3
     << R"(, "pid": )" << pid << R"(, "tid": )" << tid << "}";
}

}  // namespace

void write_chrome_trace(std::ostream& os, const ExecutionModel& model,
                        const ExecutionTrace& trace) {
  os << "{\n\"traceEvents\": [\n";
  bool first = true;

  // Sort leaves per machine by begin time for stable lane packing.
  std::map<trace::MachineId, std::vector<InstanceId>> per_machine;
  for (const InstanceId leaf : trace.leaves()) {
    per_machine[trace.instance(leaf).machine].push_back(leaf);
  }
  for (auto& [machine, leaves] : per_machine) {
    std::sort(leaves.begin(), leaves.end(),
              [&](InstanceId a, InstanceId b) {
                return trace.instance(a).begin < trace.instance(b).begin;
              });
    // pid 0 is reserved for global phases (machine = -1).
    const int pid = static_cast<int>(machine) + 1;
    LaneAllocator lanes;
    for (const InstanceId id : leaves) {
      const PhaseInstance& instance = trace.instance(id);
      const int tid = lanes.assign(instance.begin, instance.end);
      write_event(os, first, model.type(instance.type).name, "phase",
                  instance.begin, std::max<DurationNs>(instance.duration(), 1),
                  pid, tid);
      for (const Interval& blocked : instance.blocked) {
        write_event(os, first, model.type(instance.type).name + " (blocked)",
                    "blocked", blocked.begin,
                    std::max<DurationNs>(blocked.length(), 1), pid, tid);
      }
    }
  }
  // Non-leaf phases on a per-depth lane of the global process, giving the
  // superstep/iteration structure as an overview band.
  for (const PhaseInstance& instance : trace.instances()) {
    if (instance.is_leaf() || instance.machine != trace::kGlobalMachine) {
      continue;
    }
    int depth = 0;
    for (InstanceId p = instance.parent; p != kNoInstance;
         p = trace.instance(p).parent) {
      ++depth;
    }
    write_event(os, first, model.type(instance.type).name, "structure",
                instance.begin, std::max<DurationNs>(instance.duration(), 1),
                0, depth);
  }
  os << "\n],\n\"displayTimeUnit\": \"ms\"\n}\n";
}

}  // namespace g10::core
