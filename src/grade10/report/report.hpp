// Result rendering (paper component 10): plain-text summaries of the
// profile, the detected bottlenecks, and the performance issues.
#pragma once

#include <ostream>
#include <vector>

#include "grade10/bottleneck/bottleneck.hpp"
#include "grade10/issues/issue_detector.hpp"

namespace g10::core {

/// Top-level phase durations and per-resource aggregate utilization.
void render_profile(std::ostream& os, const ExecutionTrace& trace,
                    const ResourceModel& resources,
                    const AttributedUsage& usage, const TimesliceGrid& grid);

/// Per-resource bottleneck totals (blocked / saturated / self-limited).
void render_bottlenecks(std::ostream& os, const ResourceModel& resources,
                        const BottleneckReport& report);

/// Detected issues sorted by impact.
void render_issues(std::ostream& os,
                   const std::vector<PerformanceIssue>& issues);

/// Critical-path breakdown: which phase types the replayed makespan is
/// spent on along the binding chain of leaves.
void render_critical_path(std::ostream& os, const ExecutionModel& model,
                          const ExecutionTrace& trace,
                          const ReplaySimulator& simulator,
                          const ReplaySchedule& schedule);

}  // namespace g10::core
