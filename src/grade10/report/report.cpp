#include "grade10/report/report.hpp"

#include <map>

#include "common/strings.hpp"
#include "common/table.hpp"

namespace g10::core {

void render_profile(std::ostream& os, const ExecutionTrace& trace,
                    const ResourceModel& resources,
                    const AttributedUsage& usage, const TimesliceGrid& grid) {
  os << "== Execution profile ==\n";
  if (trace.root() == kNoInstance) {
    os << "(empty trace)\n";
    return;
  }
  const PhaseInstance& root = trace.instance(trace.root());
  os << "makespan: " << format_fixed(to_seconds(root.duration()), 3) << " s\n";
  TextTable phases({"phase", "begin [s]", "duration [s]", "machine"});
  for (const InstanceId child : root.children) {
    const PhaseInstance& instance = trace.instance(child);
    phases.add_row({instance.path,
                    format_fixed(to_seconds(instance.begin), 3),
                    format_fixed(to_seconds(instance.duration()), 3),
                    instance.machine == trace::kGlobalMachine
                        ? "-"
                        : std::to_string(instance.machine)});
  }
  phases.render(os);

  os << "\n== Resource utilization (upsampled) ==\n";
  TextTable table({"resource", "machine", "mean util", "unattributed",
                   "unallocated mass"});
  for (const AttributedResource& r : usage.resources) {
    double total = 0.0;
    double unattributed = 0.0;
    for (const double u : r.upsampled.usage) total += u;
    for (const double u : r.unattributed) unattributed += u;
    const double slices = static_cast<double>(r.slice_count());
    (void)grid;
    table.add_row(
        {resources.resource(r.resource).name,
         r.machine == trace::kGlobalMachine ? "-" : std::to_string(r.machine),
         format_percent(slices > 0 ? total / slices / r.capacity : 0.0),
         format_percent(total > 0 ? unattributed / total : 0.0),
         format_fixed(r.upsampled.unallocated, 3)});
  }
  table.render(os);
}

void render_bottlenecks(std::ostream& os, const ResourceModel& resources,
                        const BottleneckReport& report) {
  os << "== Bottlenecks ==\n";
  const auto blocked = BottleneckReport::totals_by_resource(report.blocked);
  const auto saturated =
      BottleneckReport::totals_by_resource(report.saturated);
  const auto limited =
      BottleneckReport::totals_by_resource(report.self_limited);
  TextTable table(
      {"resource", "blocked [s]", "saturated [s]", "self-limited [s]"});
  for (ResourceId r = 0;
       r < static_cast<ResourceId>(resources.resource_count()); ++r) {
    const auto value = [&](const std::map<ResourceId, DurationNs>& m) {
      const auto it = m.find(r);
      return it == m.end() ? 0.0 : to_seconds(it->second);
    };
    table.add_row({resources.resource(r).name,
                   format_fixed(value(blocked), 3),
                   format_fixed(value(saturated), 3),
                   format_fixed(value(limited), 3)});
  }
  table.render(os);
}

void render_critical_path(std::ostream& os, const ExecutionModel& model,
                          const ExecutionTrace& trace,
                          const ReplaySimulator& simulator,
                          const ReplaySchedule& schedule) {
  os << "== Critical path (replayed) ==\n";
  const auto leaves = simulator.critical_leaves(schedule);
  if (leaves.empty() || schedule.makespan <= 0) {
    os << "(empty schedule)\n";
    return;
  }
  std::map<PhaseTypeId, DurationNs> by_type;
  DurationNs covered = 0;
  for (const InstanceId leaf : leaves) {
    const DurationNs length =
        schedule.end[static_cast<std::size_t>(leaf)] -
        schedule.start[static_cast<std::size_t>(leaf)];
    by_type[trace.instance(leaf).type] += length;
    covered += length;
  }
  TextTable table({"phase type", "time on path [s]", "share of makespan"});
  for (const auto& [type, time] : by_type) {
    table.add_row({model.type(type).name, format_fixed(to_seconds(time), 3),
                   format_percent(static_cast<double>(time) /
                                  static_cast<double>(schedule.makespan))});
  }
  table.add_row({"(scheduler gaps / parent tails)",
                 format_fixed(to_seconds(schedule.makespan - covered), 3),
                 format_percent(static_cast<double>(schedule.makespan -
                                                    covered) /
                                static_cast<double>(schedule.makespan))});
  table.render(os);
}

void render_issues(std::ostream& os,
                   const std::vector<PerformanceIssue>& issues) {
  os << "== Performance issues (optimistic impact) ==\n";
  if (issues.empty()) {
    os << "(none above threshold)\n";
    return;
  }
  TextTable table({"issue", "impact", "baseline [s]", "optimistic [s]"});
  for (const PerformanceIssue& issue : issues) {
    table.add_row({issue.description, format_percent(issue.impact),
                   format_fixed(to_seconds(issue.baseline_makespan), 3),
                   format_fixed(to_seconds(issue.optimistic_makespan), 3)});
  }
  table.render(os);
}

}  // namespace g10::core
