// Timeline export in the Chrome tracing ("catapult") JSON format, loadable
// in chrome://tracing or Perfetto — the interactive half of the paper's
// result-visualization component.
//
// Machines become processes; within a machine, leaf phases are packed onto
// lanes (threads) greedily so concurrent phases render side by side.
// Blocking intervals are emitted as separate events on the same lane under
// the "blocked" category.
#pragma once

#include <ostream>

#include "grade10/model/execution_model.hpp"
#include "grade10/trace/execution_trace.hpp"

namespace g10::core {

void write_chrome_trace(std::ostream& os, const ExecutionModel& model,
                        const ExecutionTrace& trace);

}  // namespace g10::core
