#include "grade10/report/diagnostics.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace g10::core {

std::vector<ResourceDiagnostics> compute_resource_diagnostics(
    const AttributedUsage& usage) {
  std::vector<ResourceDiagnostics> out;
  for (const AttributedResource& r : usage.resources) {
    ResourceDiagnostics d;
    d.resource = r.resource;
    d.machine = r.machine;
    const auto& series = r.upsampled.usage;
    if (series.empty()) {
      out.push_back(d);
      continue;
    }
    const double total =
        std::accumulate(series.begin(), series.end(), 0.0);
    d.mean_utilization =
        total / (static_cast<double>(series.size()) * r.capacity);
    std::size_t idle = 0;
    for (const double u : series) {
      if (u < 0.05 * r.capacity) ++idle;
    }
    d.idle_fraction =
        static_cast<double>(idle) / static_cast<double>(series.size());
    if (total > 0.0) {
      std::vector<double> sorted(series.begin(), series.end());
      std::sort(sorted.begin(), sorted.end(), std::greater<>());
      const auto decile = std::max<std::size_t>(1, sorted.size() / 10);
      const double top =
          std::accumulate(sorted.begin(),
                          sorted.begin() + static_cast<std::ptrdiff_t>(decile),
                          0.0);
      const double decile_fraction =
          static_cast<double>(decile) / static_cast<double>(sorted.size());
      d.burstiness = (top / total) / decile_fraction;
    }
    out.push_back(d);
  }
  return out;
}

std::vector<SkewDiagnostics> compute_machine_skew(
    const AttributedUsage& usage) {
  std::map<ResourceId, std::vector<double>> totals;
  for (const AttributedResource& r : usage.resources) {
    if (r.machine == trace::kGlobalMachine) continue;
    totals[r.resource].push_back(std::accumulate(
        r.upsampled.usage.begin(), r.upsampled.usage.end(), 0.0));
  }
  std::vector<SkewDiagnostics> out;
  for (const auto& [resource, values] : totals) {
    if (values.size() < 2) continue;
    SkewDiagnostics d;
    d.resource = resource;
    RunningStats stats;
    for (const double v : values) stats.add(v);
    if (stats.mean() > 0.0) {
      d.max_over_mean = stats.max() / stats.mean();
      d.cov = stats.stddev() / stats.mean();
    }
    out.push_back(d);
  }
  return out;
}

void render_diagnostics(std::ostream& os, const ResourceModel& resources,
                        const std::vector<ResourceDiagnostics>& per_resource,
                        const std::vector<SkewDiagnostics>& skew) {
  os << "== Resource diagnostics ==\n";
  TextTable table({"resource", "machine", "mean util", "burstiness",
                   "idle slices"});
  for (const ResourceDiagnostics& d : per_resource) {
    table.add_row(
        {resources.resource(d.resource).name,
         d.machine == trace::kGlobalMachine ? "-" : std::to_string(d.machine),
         format_percent(d.mean_utilization), format_fixed(d.burstiness, 2),
         format_percent(d.idle_fraction)});
  }
  table.render(os);
  if (!skew.empty()) {
    os << "\n== Cross-machine skew ==\n";
    TextTable skew_table({"resource", "max/mean", "CoV"});
    for (const SkewDiagnostics& d : skew) {
      skew_table.add_row({resources.resource(d.resource).name,
                          format_fixed(d.max_over_mean, 2),
                          format_fixed(d.cov, 3)});
    }
    skew_table.render(os);
  }
}

}  // namespace g10::core
