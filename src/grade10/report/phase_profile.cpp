#include "grade10/report/phase_profile.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "common/table.hpp"

namespace g10::core {

std::vector<PhaseTypeStats> build_phase_profile(
    const ExecutionTrace& trace, const AttributedUsage& usage,
    const BottleneckReport& bottlenecks, const TimesliceGrid& grid) {
  std::map<PhaseTypeId, PhaseTypeStats> by_type;
  std::vector<PhaseTypeId> instance_type(trace.instances().size(),
                                         kNoPhaseType);
  for (const PhaseInstance& instance : trace.instances()) {
    auto& stats = by_type[instance.type];
    stats.type = instance.type;
    ++stats.instances;
    stats.total_duration += instance.duration();
    stats.max_duration = std::max(stats.max_duration, instance.duration());
    stats.total_blocked += instance.blocked_time();
    instance_type[static_cast<std::size_t>(instance.id)] = instance.type;
  }
  // Attributed usage, rolled up to each leaf's own type.
  const double slice_seconds = to_seconds(grid.slice_duration());
  for (const AttributedResource& resource : usage.resources) {
    for (const AttributionEntry& entry : resource.entries) {
      const PhaseTypeId type =
          instance_type[static_cast<std::size_t>(entry.instance)];
      by_type[type].usage[resource.resource] += entry.usage * slice_seconds;
    }
  }
  const auto accumulate =
      [&](const std::map<std::pair<InstanceId, ResourceId>, DurationNs>& m) {
        for (const auto& [key, time] : m) {
          const PhaseTypeId type =
              instance_type[static_cast<std::size_t>(key.first)];
          by_type[type].bottlenecked[key.second] += time;
        }
      };
  accumulate(bottlenecks.blocked);
  accumulate(bottlenecks.saturated);
  accumulate(bottlenecks.self_limited);

  std::vector<PhaseTypeStats> profile;
  profile.reserve(by_type.size());
  for (auto& [type, stats] : by_type) profile.push_back(std::move(stats));
  std::sort(profile.begin(), profile.end(),
            [](const PhaseTypeStats& a, const PhaseTypeStats& b) {
              return a.total_duration > b.total_duration;
            });
  return profile;
}

void render_phase_profile(std::ostream& os, const ExecutionModel& model,
                          const ResourceModel& resources,
                          const std::vector<PhaseTypeStats>& profile) {
  os << "== Phase-type profile ==\n";
  std::vector<std::string> header{"phase type", "count", "total [s]",
                                  "max [s]", "blocked [s]"};
  const auto consumables = resources.consumables();
  for (const ResourceId r : consumables) {
    header.push_back(resources.resource(r).name + " [unit.s]");
  }
  header.push_back("bottlenecked [s]");
  TextTable table(std::move(header));
  for (const PhaseTypeStats& stats : profile) {
    std::vector<std::string> row{
        model.type(stats.type).name, std::to_string(stats.instances),
        format_fixed(to_seconds(stats.total_duration), 3),
        format_fixed(to_seconds(stats.max_duration), 3),
        format_fixed(to_seconds(stats.total_blocked), 3)};
    for (const ResourceId r : consumables) {
      const auto it = stats.usage.find(r);
      row.push_back(format_fixed(it == stats.usage.end() ? 0.0 : it->second,
                                 3));
    }
    DurationNs bottlenecked = 0;
    for (const auto& [r, time] : stats.bottlenecked) bottlenecked += time;
    row.push_back(format_fixed(to_seconds(bottlenecked), 3));
    table.add_row(std::move(row));
  }
  table.render(os);
}

}  // namespace g10::core
