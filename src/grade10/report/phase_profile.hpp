// Per-phase-type profile: the aggregate view an analyst reads first
// (paper component 10). For every phase type: instance counts, total and
// per-instance durations, blocked time per blocking resource, and attributed
// usage per consumable resource, rolled up over all instances of the type.
#pragma once

#include <map>
#include <ostream>
#include <vector>

#include "grade10/attribution/attributor.hpp"
#include "grade10/bottleneck/bottleneck.hpp"
#include "grade10/trace/execution_trace.hpp"

namespace g10::core {

struct PhaseTypeStats {
  PhaseTypeId type = kNoPhaseType;
  std::size_t instances = 0;
  DurationNs total_duration = 0;
  DurationNs max_duration = 0;
  DurationNs total_blocked = 0;
  /// Attributed usage in unit·seconds per consumable resource (leaf types
  /// only — attribution happens at leaf level).
  std::map<ResourceId, double> usage;
  /// Total bottlenecked time per resource (blocked + saturated +
  /// self-limited).
  std::map<ResourceId, DurationNs> bottlenecked;
};

/// Aggregates the trace + attribution + bottleneck results by phase type.
std::vector<PhaseTypeStats> build_phase_profile(
    const ExecutionTrace& trace, const AttributedUsage& usage,
    const BottleneckReport& bottlenecks, const TimesliceGrid& grid);

/// Renders the profile as a table, with resource columns named from the
/// model. Types are ordered by total duration, descending.
void render_phase_profile(std::ostream& os, const ExecutionModel& model,
                          const ResourceModel& resources,
                          const std::vector<PhaseTypeStats>& profile);

}  // namespace g10::core
