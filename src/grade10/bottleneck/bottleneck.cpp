#include "grade10/bottleneck/bottleneck.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace g10::core {

const ResourceSaturation* BottleneckReport::find_saturation(
    ResourceId resource, trace::MachineId machine) const {
  for (const auto& s : saturation) {
    if (s.resource == resource && s.machine == machine) return &s;
  }
  return nullptr;
}

DurationNs BottleneckReport::bottleneck_time(InstanceId instance,
                                             ResourceId resource) const {
  DurationNs total = 0;
  if (const auto it = blocked.find({instance, resource}); it != blocked.end()) {
    total += it->second;
  }
  if (const auto it = saturated.find({instance, resource});
      it != saturated.end()) {
    total += it->second;
  }
  if (const auto it = self_limited.find({instance, resource});
      it != self_limited.end()) {
    total += it->second;
  }
  return total;
}

std::map<ResourceId, DurationNs> BottleneckReport::totals_by_resource(
    const std::map<std::pair<InstanceId, ResourceId>, DurationNs>& m) {
  std::map<ResourceId, DurationNs> totals;
  for (const auto& [key, value] : m) totals[key.second] += value;
  return totals;
}

namespace {

/// Bottleneck classification of a single attributed resource instance.
struct ResourceBottlenecks {
  ResourceSaturation sat;
  std::map<std::pair<InstanceId, ResourceId>, DurationNs> saturated;
  std::map<std::pair<InstanceId, ResourceId>, DurationNs> self_limited;
};

ResourceBottlenecks detect_one(const AttributedResource& res,
                               const TimesliceGrid& grid,
                               const AnalysisConfig& config) {
  ResourceBottlenecks out;
  const DurationNs slice = grid.slice_duration();

  // Saturation timeline with run-length filtering.
  ResourceSaturation& sat = out.sat;
  sat.resource = res.resource;
  sat.machine = res.machine;
  const auto slices = static_cast<std::size_t>(res.slice_count());
  G10_ASSERT_MSG(res.upsampled.usage.size() == slices,
                 "attributed resource and upsampled series disagree on "
                 "slice count");
  sat.saturated.assign(slices, 0);
  const double threshold = config.saturation_threshold * res.capacity;
  std::size_t run_start = 0;
  bool in_run = false;
  const auto close_run = [&](std::size_t end) {
    if (!in_run) return;
    if (end - run_start >=
        static_cast<std::size_t>(config.min_saturation_slices)) {
      for (std::size_t s = run_start; s < end; ++s) sat.saturated[s] = 1;
      sat.total_saturated +=
          static_cast<DurationNs>(end - run_start) * slice;
    }
    in_run = false;
  };
  for (std::size_t s = 0; s < slices; ++s) {
    if (res.upsampled.usage[s] >= threshold) {
      if (!in_run) {
        in_run = true;
        run_start = s;
      }
    } else {
      close_run(s);
    }
  }
  close_run(slices);

  // Per-phase consumable bottlenecks.
  for (std::size_t s = 0; s < slices; ++s) {
    const auto entries = res.slice_entries(static_cast<TimesliceIndex>(s));
    for (const AttributionEntry& entry : entries) {
      if (entry.demand <= 0.0) continue;
      const auto affected = static_cast<DurationNs>(
          entry.fraction * static_cast<double>(slice));
      if (sat.saturated[s]) {
        out.saturated[{entry.instance, res.resource}] += affected;
      } else if (entry.exact &&
                 entry.usage >= config.exact_cap_threshold * entry.demand) {
        out.self_limited[{entry.instance, res.resource}] += affected;
      }
    }
  }
  return out;
}

}  // namespace

BottleneckReport detect_bottlenecks(const AttributedUsage& usage,
                                    const ExecutionTrace& trace,
                                    const TimesliceGrid& grid,
                                    const AnalysisConfig& config,
                                    ThreadPool* pool) {
  BottleneckReport report;

  // Blocking bottlenecks: straight from the blocking events.
  for (const BlockingSpan& span : trace.blocking()) {
    report.blocked[{span.instance, span.resource}] += span.interval.length();
  }

  // Each resource instance classifies independently; partial results are
  // merged in resource order. The per-(instance, resource) durations are
  // integers, so merged sums are exact regardless of grouping.
  std::vector<ResourceBottlenecks> partial(usage.resources.size());
  parallel_for(pool, usage.resources.size(), 1, [&](std::size_t r) {
    partial[r] = detect_one(usage.resources[r], grid, config);
  });
  for (ResourceBottlenecks& p : partial) {
    for (const auto& [key, value] : p.saturated) report.saturated[key] += value;
    for (const auto& [key, value] : p.self_limited) {
      report.self_limited[key] += value;
    }
    report.saturation.push_back(std::move(p.sat));
  }
  return report;
}

}  // namespace g10::core
