// Resource-bottleneck identification (paper §III-E).
//
// Three bottleneck classes are detected:
//  - blocking bottlenecks: time a phase spent blocked on a blocking resource
//    (GC, message queues) — read directly from the blocking events;
//  - saturation bottlenecks: a consumable resource at (~)full utilization
//    for an extended period bottlenecks every phase using it then;
//  - self-limit bottlenecks: a phase with an Exact rule pinned at its own
//    demand even though the resource is not saturated (e.g. a phase confined
//    to 2 of 4 cores using exactly those 2).
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "grade10/attribution/attributor.hpp"
#include "grade10/config.hpp"
#include "grade10/trace/execution_trace.hpp"

namespace g10::core {

struct ResourceSaturation {
  ResourceId resource = kNoResource;
  trace::MachineId machine = trace::kGlobalMachine;
  /// Per slice: saturated after run-length filtering.
  std::vector<char> saturated;
  DurationNs total_saturated = 0;
};

struct BottleneckReport {
  /// Per (phase instance, blocking resource): total blocked time.
  std::map<std::pair<InstanceId, ResourceId>, DurationNs> blocked;
  /// Per (phase instance, consumable resource): time bottlenecked because
  /// the resource was saturated.
  std::map<std::pair<InstanceId, ResourceId>, DurationNs> saturated;
  /// Per (phase instance, consumable resource): time the phase was pinned
  /// at its own Exact limit while the resource had headroom.
  std::map<std::pair<InstanceId, ResourceId>, DurationNs> self_limited;
  /// Per resource instance: saturation timeline.
  std::vector<ResourceSaturation> saturation;

  const ResourceSaturation* find_saturation(ResourceId resource,
                                            trace::MachineId machine) const;

  /// Total time the instance was bottlenecked on `resource` for any reason.
  DurationNs bottleneck_time(InstanceId instance, ResourceId resource) const;

  /// Sums a per-(instance, resource) map over all instances, per resource.
  static std::map<ResourceId, DurationNs> totals_by_resource(
      const std::map<std::pair<InstanceId, ResourceId>, DurationNs>& m);
};

/// With a pool, resource instances are classified in parallel and merged
/// in resource order (bit-identical to the serial path).
BottleneckReport detect_bottlenecks(const AttributedUsage& usage,
                                    const ExecutionTrace& trace,
                                    const TimesliceGrid& grid,
                                    const AnalysisConfig& config,
                                    ThreadPool* pool = nullptr);

}  // namespace g10::core
