// High-level facade: one call from raw logs + models to the full
// characterization result (paper Fig. 1, components 6-9).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "grade10/attribution/attributor.hpp"
#include "grade10/attribution/demand.hpp"
#include "grade10/bottleneck/bottleneck.hpp"
#include "grade10/config.hpp"
#include "grade10/issues/issue_detector.hpp"
#include "grade10/model/attribution_rules.hpp"
#include "grade10/trace/execution_trace.hpp"
#include "grade10/trace/resource_trace.hpp"
#include "trace/records.hpp"

namespace g10::core {

struct CharacterizationInput {
  const ExecutionModel* model = nullptr;
  const ResourceModel* resources = nullptr;
  const AttributionRuleSet* rules = nullptr;
  std::span<const trace::PhaseEventRecord> phase_events;
  std::span<const trace::BlockingEventRecord> blocking_events;
  std::span<const trace::MonitoringSampleRecord> samples;
  AnalysisConfig config;
  ExecutionTrace::Options trace_options;
};

struct CharacterizationResult {
  ExecutionTrace trace;
  ResourceTrace monitored;
  std::vector<DemandMatrix> demand;
  AttributedUsage usage;
  BottleneckReport bottlenecks;
  std::vector<PerformanceIssue> issues;
  TimeNs baseline_makespan = 0;

  TimesliceGrid grid{1};
};

/// Outcome summary of a characterization attempt: structured errors instead
/// of aborts, plus any lenient-mode repair warnings from trace ingestion.
struct CharacterizationStatus {
  std::vector<std::string> errors;
  std::vector<std::string> warnings;
  bool ok() const { return errors.empty(); }
};

struct CheckedCharacterization {
  CharacterizationStatus status;
  /// Present when the pipeline produced a (possibly partial) result. On a
  /// late-stage failure the trace survives but downstream fields are empty.
  std::optional<CharacterizationResult> result;
};

/// Runs the full pipeline: trace building, demand estimation, upsampling +
/// attribution, bottleneck identification, and issue detection.
/// Throws g10::CheckError on invalid input or a damaged trace (unless
/// trace_options.lenient repairs it).
CharacterizationResult characterize(const CharacterizationInput& input);

/// Like characterize(), but never throws for data-dependent failures:
/// missing inputs and per-stage CheckErrors become status.errors, and the
/// stages that did complete are returned. Use with trace_options.lenient
/// for graceful degradation on damaged logs.
CheckedCharacterization characterize_checked(
    const CharacterizationInput& input);

}  // namespace g10::core
