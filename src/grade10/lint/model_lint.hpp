// Lint rules over the declarative model file (model_io.hpp format).
//
// parse_model() is strict and stops at the first malformed statement; the
// linter re-reads the same text with a *loose* parser that records every
// declaration it can make sense of and keeps going, so a single run reports
// every problem in the file. On top of the per-statement syntax checks it
// validates the cross-statement invariants the pipeline relies on: one root,
// an ancestor chain that reaches it, acyclic sibling order, and attribution
// rules that name real phases/resources and actually take effect.
#pragma once

#include <string_view>

#include "grade10/lint/lint.hpp"
#include "grade10/model/model_io.hpp"

namespace g10::lint {

/// Lints the text of a model file. `filename` seeds finding locations.
LintReport lint_model_text(std::string_view text, std::string_view filename);

/// Lints an already-built model by serializing it through write_model() and
/// linting the round-tripped text; line numbers refer to that serialized
/// form, so findings lean on Location::context (phase/resource names).
LintReport lint_model(const core::ModelDescription& model,
                      std::string_view filename = "<model>");

}  // namespace g10::lint
