#include "grade10/lint/model_lint.hpp"

#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/strings.hpp"

namespace g10::lint {

namespace {

struct PhaseDecl {
  std::string name;
  std::string parent;  ///< empty for the root
  bool parent_resolved = false;
  std::size_t line = 0;
};

struct ResourceDecl {
  std::string name;
  bool blocking = false;
  double capacity = 0.0;
  std::size_t line = 0;
};

struct OrderDecl {
  std::string before;
  std::string after;
  std::size_t line = 0;
};

struct RuleDecl {
  std::string phase;
  std::string resource;
  char kind = 'V';  ///< 'N'one, 'E'xact, 'V'ariable
  double amount = 0.0;
  std::size_t line = 0;
};

/// Loose model-file reader: keeps every declaration it can make sense of
/// and reports (rather than stops at) malformed statements.
class ModelLinter {
 public:
  ModelLinter(std::string_view text, std::string_view filename)
      : text_(text), file_(filename) {}

  LintReport run() {
    scan();
    check_roots();
    check_reachability();
    check_order();
    check_rules();
    return std::move(report_);
  }

 private:
  Location at(std::size_t line, std::string context = {}) const {
    return Location{file_, line, std::move(context)};
  }

  void syntax(std::size_t line, std::string message, std::string context = {}) {
    report_.add("model-syntax", Severity::kError, at(line, std::move(context)),
                std::move(message));
  }

  const PhaseDecl* find_phase(std::string_view name) const {
    for (const PhaseDecl& p : phases_) {
      if (p.name == name) return &p;
    }
    return nullptr;
  }

  const ResourceDecl* find_resource(std::string_view name) const {
    for (const ResourceDecl& r : resources_) {
      if (r.name == name) return &r;
    }
    return nullptr;
  }

  void scan() {
    std::istringstream is{std::string(text_)};
    std::string line;
    std::size_t line_number = 0;
    std::vector<std::string_view> fields;
    while (std::getline(is, line)) {
      ++line_number;
      const std::string_view trimmed = trim(line);
      if (trimmed.empty() || trimmed.front() == '#') continue;
      fields.clear();
      for (const auto part : split(trimmed, ' ')) {
        const auto token = trim(part);
        if (!token.empty()) fields.push_back(token);
      }
      if (fields[0] == "PHASE") {
        scan_phase(fields, line_number);
      } else if (fields[0] == "ORDER") {
        scan_order(fields, line_number);
      } else if (fields[0] == "RESOURCE") {
        scan_resource(fields, line_number);
      } else if (fields[0] == "RULE") {
        scan_rule(fields, line_number);
      } else if (fields[0] == "DEFAULT") {
        scan_default(fields, line_number);
      } else {
        syntax(line_number, "unknown statement: " + std::string(fields[0]));
      }
    }
    if (phases_.empty()) {
      report_.add("model-empty", Severity::kError, at(line_number),
                  "the model declares no phase types");
    }
  }

  void scan_phase(const std::vector<std::string_view>& f, std::size_t line) {
    if (f.size() < 2) {
      syntax(line, "PHASE needs a name");
      return;
    }
    PhaseDecl decl;
    decl.name = std::string(f[1]);
    decl.line = line;
    bool has_parent = false;
    for (std::size_t i = 2; i < f.size(); ++i) {
      const std::string_view arg = f[i];
      if (arg == "REPEATED" || arg == "WAIT") {
        // No lint rules key off these flags yet.
      } else if (starts_with(arg, "PARENT=")) {
        has_parent = true;
        decl.parent = std::string(arg.substr(7));
      } else if (starts_with(arg, "LIMIT=")) {
        const auto value = parse_int(arg.substr(6));
        if (!value || *value <= 0) {
          syntax(line, "bad LIMIT value", decl.name);
        }
      } else {
        syntax(line, "unknown PHASE attribute: " + std::string(arg),
               decl.name);
      }
    }
    if (find_phase(decl.name) != nullptr) {
      report_.add("model-duplicate-phase", Severity::kError,
                  at(line, decl.name),
                  "phase '" + decl.name + "' is declared more than once");
      return;
    }
    if (has_parent) {
      // Mirror parse_model(): a parent must be declared *before* its child.
      if (find_phase(decl.parent) != nullptr) {
        decl.parent_resolved = true;
      } else {
        report_.add("model-unknown-parent", Severity::kError,
                    at(line, decl.name),
                    "phase '" + decl.name + "' names parent '" + decl.parent +
                        "', which is not declared before it");
      }
    }
    phases_.push_back(std::move(decl));
  }

  void scan_order(const std::vector<std::string_view>& f, std::size_t line) {
    if (f.size() != 3) {
      syntax(line, "ORDER needs two phase names");
      return;
    }
    OrderDecl decl{std::string(f[1]), std::string(f[2]), line};
    bool known = true;
    for (const std::string& name : {decl.before, decl.after}) {
      if (find_phase(name) == nullptr) {
        report_.add("model-order-unknown-phase", Severity::kError,
                    at(line, name),
                    "ORDER references undeclared phase '" + name + "'");
        known = false;
      }
    }
    if (known) orders_.push_back(std::move(decl));
  }

  void scan_resource(const std::vector<std::string_view>& f,
                     std::size_t line) {
    if (f.size() < 3) {
      syntax(line, "RESOURCE needs a name and a kind");
      return;
    }
    ResourceDecl decl;
    decl.name = std::string(f[1]);
    decl.line = line;
    if (find_resource(decl.name) != nullptr) {
      report_.add("model-duplicate-resource", Severity::kError,
                  at(line, decl.name),
                  "resource '" + decl.name + "' is declared more than once");
      return;
    }
    if (f[2] == "BLOCKING") {
      decl.blocking = true;
    } else if (f[2] != "CONSUMABLE") {
      syntax(line, "RESOURCE kind must be CONSUMABLE or BLOCKING", decl.name);
      return;
    }
    std::optional<double> capacity;
    for (std::size_t i = 3; i < f.size(); ++i) {
      if (f[i] == "GLOBAL") {
        // Scope does not feed any lint rule.
      } else if (!decl.blocking && starts_with(f[i], "CAPACITY=")) {
        capacity = parse_double(f[i].substr(9));
      } else {
        syntax(line, "unknown RESOURCE attribute: " + std::string(f[i]),
               decl.name);
      }
    }
    if (!decl.blocking) {
      if (!capacity || *capacity <= 0.0) {
        syntax(line, "CONSUMABLE resource needs CAPACITY=<positive>",
               decl.name);
        return;
      }
      decl.capacity = *capacity;
    }
    resources_.push_back(std::move(decl));
  }

  /// Parses "NONE" / "EXACT <x>" / "VARIABLE <x>" starting at f[at].
  /// Returns false (after reporting) when the spec is malformed.
  bool scan_rule_spec(const std::vector<std::string_view>& f, std::size_t at,
                      std::size_t line, char& kind, double& amount) {
    if (f.size() <= at) {
      syntax(line, "missing rule spec");
      return false;
    }
    if (f[at] == "NONE") {
      if (f.size() != at + 1) {
        syntax(line, "NONE takes no argument");
        return false;
      }
      kind = 'N';
      return true;
    }
    if (f[at] != "EXACT" && f[at] != "VARIABLE") {
      syntax(line, "rule kind must be NONE, EXACT or VARIABLE");
      return false;
    }
    if (f.size() != at + 2) {
      syntax(line, "rule needs exactly one numeric argument");
      return false;
    }
    const auto value = parse_double(f[at + 1]);
    if (!value || *value <= 0.0) {
      syntax(line, "rule amount must be positive");
      return false;
    }
    kind = f[at] == "EXACT" ? 'E' : 'V';
    amount = *value;
    return true;
  }

  void scan_rule(const std::vector<std::string_view>& f, std::size_t line) {
    if (f.size() < 4) {
      syntax(line, "RULE needs <phase> <resource> <spec>");
      return;
    }
    RuleDecl decl;
    decl.phase = std::string(f[1]);
    decl.resource = std::string(f[2]);
    decl.line = line;
    bool known = true;
    if (find_phase(decl.phase) == nullptr) {
      report_.add("model-rule-unknown-phase", Severity::kError,
                  at(line, decl.phase),
                  "RULE references undeclared phase '" + decl.phase + "'");
      known = false;
    }
    if (find_resource(decl.resource) == nullptr) {
      report_.add("model-rule-unknown-resource", Severity::kError,
                  at(line, decl.resource),
                  "RULE references undeclared resource '" + decl.resource +
                      "'");
      known = false;
    }
    if (!scan_rule_spec(f, 3, line, decl.kind, decl.amount)) return;
    if (known) rules_.push_back(std::move(decl));
  }

  void scan_default(const std::vector<std::string_view>& f,
                    std::size_t line) {
    char kind = 'V';
    double amount = 0.0;
    if (!scan_rule_spec(f, 1, line, kind, amount)) return;
    if (kind == 'E') syntax(line, "DEFAULT cannot be EXACT");
  }

  void check_roots() {
    bool seen_root = false;
    for (const PhaseDecl& p : phases_) {
      const bool is_root = p.parent.empty() && !p.parent_resolved;
      if (!is_root) continue;
      if (seen_root) {
        report_.add("model-multiple-roots", Severity::kError,
                    at(p.line, p.name),
                    "phase '" + p.name +
                        "' has no PARENT= but the root is already declared");
      }
      seen_root = true;
    }
  }

  void check_reachability() {
    // The root (first parentless phase) is reachable; a child is reachable
    // iff its parent resolved and is reachable. Phases whose parent did not
    // resolve were already reported as model-unknown-parent, so only their
    // *descendants* are reported here.
    std::set<std::string> reachable;
    for (const PhaseDecl& p : phases_) {
      if (p.parent.empty()) {
        if (reachable.empty()) reachable.insert(p.name);
        continue;  // extra roots reported by check_roots()
      }
      if (p.parent_resolved && reachable.count(p.parent) > 0) {
        reachable.insert(p.name);
      } else if (p.parent_resolved) {
        report_.add("model-unreachable-phase", Severity::kError,
                    at(p.line, p.name),
                    "phase '" + p.name +
                        "' descends from an unplaceable phase and can never "
                        "appear in a trace");
      }
    }
  }

  void check_order() {
    // Sibling check, then a Kahn pass per sibling group to find cycles.
    std::map<std::string, std::vector<const OrderDecl*>> by_parent;
    for (const OrderDecl& o : orders_) {
      const PhaseDecl* before = find_phase(o.before);
      const PhaseDecl* after = find_phase(o.after);
      if (before->parent != after->parent) {
        report_.add("model-order-not-siblings", Severity::kError,
                    at(o.line, o.before + " -> " + o.after),
                    "ORDER phases '" + o.before + "' and '" + o.after +
                        "' have different parents");
        continue;
      }
      by_parent[before->parent].push_back(&o);
    }
    for (const auto& [parent, edges] : by_parent) {
      std::map<std::string, std::set<std::string>> succ;
      std::map<std::string, int> indegree;
      for (const OrderDecl* e : edges) {
        indegree.try_emplace(e->before, 0);
        indegree.try_emplace(e->after, 0);
        if (succ[e->before].insert(e->after).second) ++indegree[e->after];
      }
      std::vector<std::string> queue;
      for (const auto& [name, deg] : indegree) {
        if (deg == 0) queue.push_back(name);
      }
      std::size_t removed = 0;
      while (!queue.empty()) {
        const std::string name = std::move(queue.back());
        queue.pop_back();
        ++removed;
        for (const std::string& next : succ[name]) {
          if (--indegree[next] == 0) queue.push_back(next);
        }
      }
      if (removed == indegree.size()) continue;
      std::vector<std::string> cycle;
      for (const auto& [name, deg] : indegree) {
        if (deg > 0) cycle.push_back(name);
      }
      report_.add("model-order-cycle", Severity::kError,
                  at(edges.front()->line, join(cycle, ", ")),
                  "ORDER edges among siblings of '" +
                      (parent.empty() ? std::string("<root>") : parent) +
                      "' form a cycle; no instance order can satisfy them");
    }
  }

  void check_rules() {
    std::set<std::string> interior;
    for (const PhaseDecl& p : phases_) {
      if (p.parent_resolved) interior.insert(p.parent);
    }
    std::map<std::pair<std::string, std::string>, const RuleDecl*> last;
    for (const RuleDecl& r : rules_) {
      const std::string pair = r.phase + "/" + r.resource;
      const auto [it, inserted] =
          last.try_emplace({r.phase, r.resource}, &r);
      if (!inserted) {
        const RuleDecl& prev = *it->second;
        if (prev.kind == r.kind && prev.amount == r.amount) {
          report_.add("model-rule-shadowed", Severity::kWarning,
                      at(r.line, pair),
                      "rule repeats the identical rule on line " +
                          std::to_string(prev.line));
        } else {
          report_.add("model-rule-conflict", Severity::kError,
                      at(r.line, pair),
                      "rule contradicts the rule on line " +
                          std::to_string(prev.line) +
                          " for the same phase and resource");
        }
        it->second = &r;
        continue;
      }
      const ResourceDecl& resource = *find_resource(r.resource);
      if (resource.blocking && r.kind != 'N') {
        report_.add("model-rule-blocking-resource", Severity::kWarning,
                    at(r.line, pair),
                    "resource '" + r.resource +
                        "' is BLOCKING; demand rules only apply to "
                        "consumable resources and this rule is ignored");
      }
      if (interior.count(r.phase) > 0 && r.kind != 'N') {
        report_.add("model-rule-interior-phase", Severity::kWarning,
                    at(r.line, pair),
                    "phase '" + r.phase +
                        "' has children; demand is estimated for leaf "
                        "phases only, so this rule is ignored");
      }
      if (!resource.blocking && r.kind == 'E' &&
          r.amount > resource.capacity) {
        report_.add("model-exact-exceeds-capacity", Severity::kWarning,
                    at(r.line, pair),
                    "EXACT demand " + format_fixed(r.amount, 3) +
                        " exceeds the capacity " +
                        format_fixed(resource.capacity, 3) + " of '" +
                        r.resource + "' (unit mismatch?)");
      }
    }
  }

  std::string_view text_;
  std::string file_;
  LintReport report_;
  std::vector<PhaseDecl> phases_;
  std::vector<ResourceDecl> resources_;
  std::vector<OrderDecl> orders_;
  std::vector<RuleDecl> rules_;
};

}  // namespace

LintReport lint_model_text(std::string_view text, std::string_view filename) {
  return ModelLinter(text, filename).run();
}

LintReport lint_model(const core::ModelDescription& model,
                      std::string_view filename) {
  std::ostringstream os;
  core::write_model(os, model.execution, model.resources, model.rules);
  return lint_model_text(os.str(), filename);
}

}  // namespace g10::lint
