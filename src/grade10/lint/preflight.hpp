// The bundled lint pass g10_analyze runs before characterizing, and the
// core of the standalone g10_lint tool: model-file lint, log-parser
// diagnostics, and record-level trace lint merged into one report.
#pragma once

#include <string_view>

#include "grade10/lint/trace_lint.hpp"

namespace g10::lint {

/// Lints a model file's text alone (no trace).
LintReport preflight_model(std::string_view model_text,
                           std::string_view model_filename);

/// Lints model text plus a parsed log: model rules, every log-parser
/// diagnostic as trace-syntax (or trace-binary-corrupt-block when the log
/// came from a `.g10t` reader), and the trace rules cross-checked against
/// `model` (the successfully parsed counterpart of `model_text`).
LintReport preflight(std::string_view model_text,
                     std::string_view model_filename,
                     const core::ModelDescription& model,
                     const trace::ParseResult& log,
                     std::string_view log_filename,
                     const TraceLintOptions& options = {},
                     bool binary_trace = false);

}  // namespace g10::lint
