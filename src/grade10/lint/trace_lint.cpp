#include "grade10/lint/trace_lint.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.hpp"

namespace g10::lint {

namespace {

using trace::kGlobalMachine;
using trace::MachineId;

/// One phase instance reassembled from its BEGIN/END events.
struct Instance {
  trace::PhasePath path;
  bool has_begin = false;
  bool has_end = false;
  TimeNs begin = 0;
  TimeNs end = 0;
  MachineId begin_machine = kGlobalMachine;
  MachineId end_machine = kGlobalMachine;

  bool complete() const { return has_begin && has_end; }
};

class TraceLinter {
 public:
  TraceLinter(const core::ModelDescription& model,
              const trace::ParsedLog& log, const TraceLintOptions& options,
              std::string_view filename)
      : model_(model), log_(log), options_(options), file_(filename) {}

  LintReport run() {
    collect_instances();
    check_instances();
    check_sibling_overlap();
    check_blocking_events();
    check_fault_provenance();
    check_samples();
    return std::move(report_);
  }

 private:
  Location at(std::string context) const {
    return Location{file_, 0, std::move(context)};
  }

  /// Adds a finding once per (rule, context); repeat offenders of the same
  /// kind (e.g. every instance of one unknown type) would otherwise flood
  /// the report.
  void add_once(std::string rule_id, Severity severity, std::string context,
                std::string message) {
    if (!reported_.insert(rule_id + "\x1f" + context).second) return;
    report_.add(std::move(rule_id), severity, at(std::move(context)),
                std::move(message));
  }

  void collect_instances() {
    for (const trace::PhaseEventRecord& event : log_.phase_events) {
      const std::string key = event.path.to_string();
      auto [it, inserted] = instances_.try_emplace(key);
      Instance& inst = it->second;
      if (inserted) inst.path = event.path;
      if (event.kind == trace::PhaseEventRecord::Kind::Begin) {
        if (inst.has_begin) {
          report_.add("trace-duplicate-begin", Severity::kError, at(key),
                      "phase instance begins more than once");
          continue;
        }
        inst.has_begin = true;
        inst.begin = event.time;
        inst.begin_machine = event.machine;
      } else {
        if (inst.has_end) {
          report_.add("trace-duplicate-end", Severity::kError, at(key),
                      "phase instance ends more than once");
          continue;
        }
        inst.has_end = true;
        inst.end = event.time;
        inst.end_machine = event.machine;
      }
      machines_.insert(event.machine);
    }
  }

  void check_instances() {
    for (const auto& [key, inst] : instances_) {
      if (inst.has_begin && !inst.has_end) {
        report_.add("trace-unbalanced-begin", Severity::kError, at(key),
                    "phase instance begins but never ends (truncated log?)");
      } else if (inst.has_end && !inst.has_begin) {
        report_.add("trace-unbalanced-end", Severity::kError, at(key),
                    "phase instance ends without ever beginning");
      }
      if (inst.complete() && inst.end < inst.begin) {
        report_.add("trace-nonmonotonic-time", Severity::kError, at(key),
                    "phase instance ends at " + std::to_string(inst.end) +
                        "ns, before its begin at " +
                        std::to_string(inst.begin) + "ns");
      }
      if (inst.complete() && inst.begin_machine != inst.end_machine) {
        report_.add("trace-machine-mismatch", Severity::kWarning, at(key),
                    "BEGIN reports machine " +
                        std::to_string(inst.begin_machine) +
                        " but END reports machine " +
                        std::to_string(inst.end_machine));
      }
      check_against_model(key, inst);
    }
  }

  void check_against_model(const std::string& key, const Instance& inst) {
    const auto& elements = inst.path.elements;
    if (elements.empty()) return;
    const std::string& leaf_type = elements.back().type;
    const core::PhaseTypeId type_id = model_.execution.find(leaf_type);
    if (type_id == core::kNoPhaseType) {
      add_once("trace-unknown-phase-type", Severity::kError, leaf_type,
               "phase type '" + leaf_type + "' is not in the model");
      return;
    }
    if (elements.size() == 1) {
      if (type_id != model_.execution.root()) {
        add_once("trace-hierarchy-mismatch", Severity::kError, leaf_type,
                 "phase type '" + leaf_type +
                     "' appears at the top of a path but is not the "
                     "model's root");
      }
      return;
    }
    const std::string& parent_type = elements[elements.size() - 2].type;
    const core::PhaseTypeId parent_id = model_.execution.find(parent_type);
    if (parent_id != core::kNoPhaseType &&
        model_.execution.type(type_id).parent != parent_id) {
      add_once("trace-hierarchy-mismatch", Severity::kError,
               parent_type + "/" + leaf_type,
               "the model does not declare '" + parent_type +
                   "' as the parent of '" + leaf_type + "'");
    }
    const std::string parent_key = inst.path.parent().to_string();
    const auto parent_it = instances_.find(parent_key);
    if (parent_it == instances_.end()) {
      add_once("trace-missing-parent", Severity::kError, key,
               "parent instance '" + parent_key +
                   "' never appears in the log");
      return;
    }
    const Instance& parent = parent_it->second;
    if (inst.complete() && parent.complete() &&
        (inst.begin < parent.begin || inst.end > parent.end)) {
      report_.add("trace-child-escapes-parent", Severity::kError, at(key),
                  "instance runs [" + std::to_string(inst.begin) + ", " +
                      std::to_string(inst.end) +
                      ")ns, outside its parent's [" +
                      std::to_string(parent.begin) + ", " +
                      std::to_string(parent.end) + ")ns");
    }
  }

  void check_sibling_overlap() {
    // Instances of a REPEATED type under one parent must run sequentially
    // (paper: supersteps); concurrent instances of non-repeated types
    // (one worker per machine) are expected.
    std::map<std::pair<std::string, std::string>, std::vector<const Instance*>>
        groups;
    for (const auto& [key, inst] : instances_) {
      if (!inst.complete() || inst.path.elements.empty()) continue;
      const std::string& type = inst.path.leaf().type;
      const core::PhaseTypeId id = model_.execution.find(type);
      if (id == core::kNoPhaseType || !model_.execution.type(id).repeated) {
        continue;
      }
      groups[{inst.path.parent().to_string(), type}].push_back(&inst);
    }
    for (auto& [group, members] : groups) {
      std::sort(members.begin(), members.end(),
                [](const Instance* a, const Instance* b) {
                  return a->begin < b->begin;
                });
      for (std::size_t i = 1; i < members.size(); ++i) {
        const Instance& prev = *members[i - 1];
        const Instance& next = *members[i];
        if (next.begin < prev.end) {
          report_.add(
              "trace-overlapping-siblings", Severity::kError,
              at(next.path.to_string()),
              "repeated instance overlaps sibling '" +
                  prev.path.to_string() + "' (begins at " +
                  std::to_string(next.begin) + "ns, before its end at " +
                  std::to_string(prev.end) + "ns)");
        }
      }
    }
  }

  void check_machine(MachineId machine, const std::string& context) {
    if (machine == kGlobalMachine || machines_.count(machine) > 0) return;
    add_once("trace-orphan-machine", Severity::kWarning,
             "machine " + std::to_string(machine),
             "machine " + std::to_string(machine) +
                 " appears in " + context +
                 " but in no phase event");
  }

  void check_blocking_events() {
    for (const trace::BlockingEventRecord& event : log_.blocking_events) {
      const std::string key = event.path.to_string();
      const core::ResourceId resource = model_.resources.find(event.resource);
      if (resource == core::kNoResource) {
        add_once("trace-blocking-unknown-resource", Severity::kError,
                 event.resource,
                 "blocking resource '" + event.resource +
                     "' is not in the model");
      } else if (model_.resources.resource(resource).kind ==
                 core::ResourceKind::kConsumable) {
        add_once("trace-blocking-consumable-resource", Severity::kWarning,
                 event.resource,
                 "resource '" + event.resource +
                     "' is CONSUMABLE; blocked time is only accounted for "
                     "blocking resources");
      }
      check_machine(event.machine, "a blocking event");
      const auto it = instances_.find(key);
      if (it == instances_.end()) {
        add_once("trace-blocking-unknown-phase", Severity::kError, key,
                 "blocking event names phase instance '" + key +
                     "', which never appears in the log");
        continue;
      }
      const Instance& inst = it->second;
      if (inst.complete() &&
          (event.begin < inst.begin || event.end > inst.end)) {
        report_.add("trace-blocking-outside-phase", Severity::kError, at(key),
                    "blocking interval [" + std::to_string(event.begin) +
                        ", " + std::to_string(event.end) +
                        ")ns escapes the phase's [" +
                        std::to_string(inst.begin) + ", " +
                        std::to_string(inst.end) + ")ns");
      }
    }
  }

  void check_fault_provenance() {
    // Retry/Recovery blocked time only appears in runs that had faults
    // injected, and those runs stamp the spec into a META "faults" record.
    // Blocked fault time without that provenance usually means a stripped
    // or hand-assembled log whose fault attribution can't be cross-checked.
    const auto spec = log_.meta_value("faults");
    if (spec.has_value() && !trim(*spec).empty()) return;
    for (const trace::BlockingEventRecord& event : log_.blocking_events) {
      if (event.resource != "Retry" && event.resource != "Recovery") continue;
      add_once("trace-fault-blocking-without-spec", Severity::kWarning,
               event.resource,
               "log records '" + event.resource +
                   "' blocked time but no 'faults' META record names the "
                   "injected fault spec");
    }
  }

  void check_samples() {
    std::map<std::pair<std::string, MachineId>,
             std::vector<const trace::MonitoringSampleRecord*>>
        series;
    for (const trace::MonitoringSampleRecord& sample : log_.samples) {
      const std::string context =
          sample.resource + "@" + std::to_string(sample.machine);
      const core::ResourceId resource = model_.resources.find(sample.resource);
      if (resource == core::kNoResource) {
        add_once("trace-sample-unknown-resource", Severity::kError,
                 sample.resource,
                 "monitored resource '" + sample.resource +
                     "' is not in the model");
      } else if (model_.resources.resource(resource).kind ==
                 core::ResourceKind::kBlocking) {
        add_once("trace-sample-blocking-resource", Severity::kError,
                 sample.resource,
                 "resource '" + sample.resource +
                     "' is BLOCKING and has no consumption rate to sample");
      } else {
        const double capacity = model_.resources.resource(resource).capacity;
        if (sample.value > capacity * options_.capacity_slack) {
          add_once("trace-sample-over-capacity", Severity::kWarning, context,
                   "sample value " + format_fixed(sample.value, 3) +
                       " exceeds the capacity " + format_fixed(capacity, 3) +
                       " of '" + sample.resource + "' (unit mismatch?)");
        }
      }
      if (sample.value < 0.0) {
        add_once("trace-sample-negative", Severity::kError, context,
                 "sample reports a negative rate " +
                     format_fixed(sample.value, 3));
      }
      check_machine(sample.machine, "a monitoring sample");
      series[{sample.resource, sample.machine}].push_back(&sample);
    }
    for (const auto& [key, samples] : series) {
      const std::string context =
          key.first + "@" + std::to_string(key.second);
      for (std::size_t i = 1; i < samples.size(); ++i) {
        if (samples[i]->time <= samples[i - 1]->time) {
          add_once("trace-sample-nonmonotonic", Severity::kError, context,
                   "series repeats or decreases its sample time at " +
                       std::to_string(samples[i]->time) + "ns");
          break;
        }
      }
      check_sample_gaps(context, samples);
    }
  }

  void check_sample_gaps(
      const std::string& context,
      const std::vector<const trace::MonitoringSampleRecord*>& samples) {
    if (samples.size() < options_.min_gap_samples) return;
    std::vector<TimeNs> periods;
    periods.reserve(samples.size() - 1);
    for (std::size_t i = 1; i < samples.size(); ++i) {
      const TimeNs gap = samples[i]->time - samples[i - 1]->time;
      if (gap <= 0) return;  // non-monotonic series, reported above
      periods.push_back(gap);
    }
    std::vector<TimeNs> sorted = periods;
    std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                     sorted.end());
    const TimeNs median = sorted[sorted.size() / 2];
    const auto threshold = static_cast<double>(median) *
                           options_.sample_gap_factor;
    const TimeNs worst = *std::max_element(periods.begin(), periods.end());
    if (static_cast<double>(worst) > threshold) {
      add_once("trace-sample-gap", Severity::kWarning, context,
               "series has a " + std::to_string(worst) +
                   "ns gap against a median period of " +
                   std::to_string(median) + "ns (dropped samples?)");
    }
  }

  const core::ModelDescription& model_;
  const trace::ParsedLog& log_;
  TraceLintOptions options_;
  std::string file_;
  LintReport report_;
  std::map<std::string, Instance> instances_;
  std::set<MachineId> machines_;
  std::set<std::string> reported_;
};

}  // namespace

LintReport lint_trace(const core::ModelDescription& model,
                      const trace::ParsedLog& log,
                      const TraceLintOptions& options,
                      std::string_view filename) {
  return TraceLinter(model, log, options, filename).run();
}

LintReport lint_parse_errors(const trace::ParseResult& result,
                             std::string_view filename, bool binary_trace) {
  LintReport report;
  const std::string file(filename);
  const char* rule = binary_trace ? "trace-binary-corrupt-block"
                                  : "trace-syntax";
  for (const trace::ParseError& error : result.errors) {
    report.add(rule, Severity::kError,
               Location{file, error.line_number, error.line}, error.message);
  }
  if (result.errors.empty() && result.error) {
    report.add(rule, Severity::kError,
               Location{file, result.error->line_number, result.error->line},
               result.error->message);
  }
  if (result.error_count > result.errors.size()) {
    report.add(rule, Severity::kError, Location{file, 0, ""},
               std::to_string(result.error_count - result.errors.size()) +
                   (binary_trace
                        ? " additional corrupt block(s) beyond the error cap"
                        : " additional malformed line(s) beyond the error "
                          "cap"));
  }
  return report;
}

}  // namespace g10::lint
