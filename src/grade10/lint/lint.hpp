// Static validation of Grade10's expert inputs (PR 3 tentpole).
//
// The characterization pipeline assumes well-formed inputs (paper §III-B/C):
// a phase-type tree, acyclic sibling order, attribution rules that name real
// phases and resources, and traces whose instances nest and whose monitors
// tick. When those assumptions are violated the pipeline either throws late
// (strict mode) or — worse — produces a plausible-looking but wrong profile.
// The lint layer checks all of it *statically*, without executing the
// pipeline, and reports structured findings with stable rule ids so tools,
// tests and CI can assert on them.
//
// Layout:
//  - this header: finding/report types, severity, text & JSON emitters, and
//    the rule catalog (one entry per rule id, used by `g10_lint --rules` and
//    the docs);
//  - model_lint.hpp: rules over a declarative model file (loose parse: all
//    findings are collected, not just the first);
//  - trace_lint.hpp: rules over parsed trace records, cross-checked against
//    the model;
//  - preflight.hpp: the bundled pass g10_analyze runs before characterizing.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace g10::lint {

enum class Severity { kWarning, kError };

std::string_view to_string(Severity severity);

/// Where a finding points: a file (when linting a file), a 1-based line in
/// it (0 when unknown, e.g. for in-memory records), and a free-form context
/// such as the phase path or resource name involved.
struct Location {
  std::string file;
  std::size_t line = 0;
  std::string context;
};

struct LintFinding {
  std::string rule_id;  ///< stable id, e.g. "model-order-cycle"
  Severity severity = Severity::kError;
  Location location;
  std::string message;
};

class LintReport {
 public:
  void add(std::string rule_id, Severity severity, Location location,
           std::string message);
  void merge(LintReport other);

  const std::vector<LintFinding>& findings() const { return findings_; }
  std::size_t error_count() const;
  std::size_t warning_count() const;
  bool clean() const { return findings_.empty(); }
  /// True when no *error*-severity finding is present.
  bool ok() const { return error_count() == 0; }

  /// Sorted, de-duplicated rule ids present in the report (test helper).
  std::vector<std::string> rule_ids() const;
  bool has_rule(std::string_view rule_id) const;

 private:
  std::vector<LintFinding> findings_;
};

/// One line per finding: "file:line: severity: [rule-id] message (context)".
void render_text(std::ostream& os, const LintReport& report);

/// Machine-readable: {"findings":[{rule_id,severity,file,line,context,
/// message}...],"errors":N,"warnings":N}.
void render_json(std::ostream& os, const LintReport& report);

/// Catalog entry for one lint rule; the single source of truth for ids and
/// default severities (docs and `g10_lint --rules` render from it).
struct RuleInfo {
  std::string_view id;
  Severity severity;
  std::string_view summary;
};

/// Every rule the model and trace linters can emit, sorted by id.
const std::vector<RuleInfo>& rule_catalog();

/// Catalog lookup; nullptr for unknown ids.
const RuleInfo* find_rule(std::string_view rule_id);

}  // namespace g10::lint
