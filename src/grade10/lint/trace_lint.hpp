// Lint rules over parsed trace records, cross-checked against a model.
//
// The trace builders (ExecutionTrace/ResourceTrace) enforce a few of these
// invariants by throwing on first violation; the linter instead walks the
// raw parsed records and reports *all* problems — unbalanced or duplicated
// phase events, intervals that escape their parent, repeated siblings that
// overlap, blocking events outside their phase or naming phantom resources,
// and monitoring series that tick backwards, go negative, exceed capacity
// or skip samples. Findings carry the phase path or resource@machine in
// Location::context; record streams have no line numbers.
#pragma once

#include <string_view>

#include "grade10/lint/lint.hpp"
#include "grade10/model/model_io.hpp"
#include "trace/log_io.hpp"

namespace g10::lint {

struct TraceLintOptions {
  /// A sampling gap larger than `sample_gap_factor` times the series'
  /// median period raises trace-sample-gap. Needs >= `min_gap_samples`
  /// samples to estimate the period at all.
  double sample_gap_factor = 2.5;
  std::size_t min_gap_samples = 4;
  /// Samples above capacity by more than this factor raise
  /// trace-sample-over-capacity (small overshoot is measurement noise).
  double capacity_slack = 1.05;
};

/// Lints parsed records against `model`. `filename` seeds finding locations.
LintReport lint_trace(const core::ModelDescription& model,
                      const trace::ParsedLog& log,
                      const TraceLintOptions& options = {},
                      std::string_view filename = "<log>");

/// Maps log-parser diagnostics to trace-syntax findings (with line
/// numbers). With binary_trace=true the diagnostics came from a `.g10t`
/// reader, so they surface as trace-binary-corrupt-block findings whose
/// "line" is the 1-based block ordinal.
LintReport lint_parse_errors(const trace::ParseResult& result,
                             std::string_view filename,
                             bool binary_trace = false);

}  // namespace g10::lint
