#include "grade10/lint/preflight.hpp"

#include "grade10/lint/model_lint.hpp"

namespace g10::lint {

LintReport preflight_model(std::string_view model_text,
                           std::string_view model_filename) {
  return lint_model_text(model_text, model_filename);
}

LintReport preflight(std::string_view model_text,
                     std::string_view model_filename,
                     const core::ModelDescription& model,
                     const trace::ParseResult& log,
                     std::string_view log_filename,
                     const TraceLintOptions& options, bool binary_trace) {
  LintReport report = lint_model_text(model_text, model_filename);
  report.merge(lint_parse_errors(log, log_filename, binary_trace));
  report.merge(lint_trace(model, log.log, options, log_filename));
  return report;
}

}  // namespace g10::lint
