#include "grade10/lint/lint.hpp"

#include <algorithm>

namespace g10::lint {

std::string_view to_string(Severity severity) {
  return severity == Severity::kError ? "error" : "warning";
}

void LintReport::add(std::string rule_id, Severity severity, Location location,
                     std::string message) {
  findings_.push_back(LintFinding{std::move(rule_id), severity,
                                  std::move(location), std::move(message)});
}

void LintReport::merge(LintReport other) {
  findings_.insert(findings_.end(),
                   std::make_move_iterator(other.findings_.begin()),
                   std::make_move_iterator(other.findings_.end()));
}

std::size_t LintReport::error_count() const {
  return static_cast<std::size_t>(
      std::count_if(findings_.begin(), findings_.end(), [](const auto& f) {
        return f.severity == Severity::kError;
      }));
}

std::size_t LintReport::warning_count() const {
  return findings_.size() - error_count();
}

std::vector<std::string> LintReport::rule_ids() const {
  std::vector<std::string> ids;
  ids.reserve(findings_.size());
  for (const LintFinding& finding : findings_) ids.push_back(finding.rule_id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

bool LintReport::has_rule(std::string_view rule_id) const {
  return std::any_of(
      findings_.begin(), findings_.end(),
      [rule_id](const auto& f) { return f.rule_id == rule_id; });
}

void render_text(std::ostream& os, const LintReport& report) {
  for (const LintFinding& f : report.findings()) {
    if (!f.location.file.empty()) {
      os << f.location.file << ':';
      if (f.location.line > 0) os << f.location.line << ':';
      os << ' ';
    }
    os << to_string(f.severity) << ": [" << f.rule_id << "] " << f.message;
    if (!f.location.context.empty()) os << "  (" << f.location.context << ')';
    os << '\n';
  }
  os << report.error_count() << " error(s), " << report.warning_count()
     << " warning(s)\n";
}

namespace {

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void render_json(std::ostream& os, const LintReport& report) {
  os << "{\"findings\":[";
  bool first = true;
  for (const LintFinding& f : report.findings()) {
    if (!first) os << ',';
    first = false;
    os << "{\"rule_id\":";
    write_json_string(os, f.rule_id);
    os << ",\"severity\":";
    write_json_string(os, to_string(f.severity));
    os << ",\"file\":";
    write_json_string(os, f.location.file);
    os << ",\"line\":" << f.location.line;
    os << ",\"context\":";
    write_json_string(os, f.location.context);
    os << ",\"message\":";
    write_json_string(os, f.message);
    os << '}';
  }
  os << "],\"errors\":" << report.error_count()
     << ",\"warnings\":" << report.warning_count() << "}\n";
}

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {"model-duplicate-phase", Severity::kError,
       "a phase type name is declared more than once"},
      {"model-duplicate-resource", Severity::kError,
       "a resource name is declared more than once"},
      {"model-empty", Severity::kError, "the model declares no phase types"},
      {"model-exact-exceeds-capacity", Severity::kWarning,
       "an EXACT rule demands more than the resource's capacity (suspected "
       "unit mismatch)"},
      {"model-multiple-roots", Severity::kError,
       "a non-first PHASE has no PARENT=, creating a second root"},
      {"model-order-cycle", Severity::kError,
       "sibling ORDER edges form a cycle, so no instance order satisfies "
       "them"},
      {"model-order-not-siblings", Severity::kError,
       "an ORDER edge connects phases with different parents"},
      {"model-order-unknown-phase", Severity::kError,
       "an ORDER statement references an undeclared phase"},
      {"model-rule-blocking-resource", Severity::kWarning,
       "an EXACT/VARIABLE rule targets a blocking resource; demand "
       "attribution only applies to consumables, so the rule is ignored"},
      {"model-rule-conflict", Severity::kError,
       "two RULE statements give the same (phase, resource) pair different "
       "specs; the later one silently wins"},
      {"model-rule-interior-phase", Severity::kWarning,
       "a rule targets a phase type with children; demand is estimated for "
       "leaf phases only, so the rule is ignored"},
      {"model-rule-shadowed", Severity::kWarning,
       "a RULE statement repeats an earlier identical rule"},
      {"model-rule-unknown-phase", Severity::kError,
       "a RULE references an undeclared phase"},
      {"model-rule-unknown-resource", Severity::kError,
       "a RULE references an undeclared resource"},
      {"model-syntax", Severity::kError,
       "a statement is malformed (unknown keyword or bad arguments)"},
      {"model-unknown-parent", Severity::kError,
       "a PHASE names a PARENT that is not declared before it"},
      {"model-unreachable-phase", Severity::kError,
       "a phase's ancestor chain never reaches the root, so no instance of "
       "it can be placed in the trace tree"},
      {"trace-binary-corrupt-block", Severity::kError,
       "a .g10t block failed its payload hash or decode; the block's "
       "records are unavailable (re-convert the trace from its text log)"},
      {"trace-blocking-consumable-resource", Severity::kWarning,
       "a blocking event names a consumable resource; blocked time is only "
       "accounted for blocking resources"},
      {"trace-blocking-outside-phase", Severity::kError,
       "a blocking interval escapes the interval of the phase it blocks"},
      {"trace-blocking-unknown-phase", Severity::kError,
       "a blocking event references a phase instance that never ran"},
      {"trace-blocking-unknown-resource", Severity::kError,
       "a blocking event names a resource missing from the model"},
      {"trace-child-escapes-parent", Severity::kError,
       "a phase instance's interval escapes its parent's interval"},
      {"trace-duplicate-begin", Severity::kError,
       "a phase instance has more than one BEGIN event"},
      {"trace-duplicate-end", Severity::kError,
       "a phase instance has more than one END event"},
      {"trace-fault-blocking-without-spec", Severity::kWarning,
       "the log records Retry/Recovery blocked time but carries no 'faults' "
       "META record naming the injected fault spec"},
      {"trace-hierarchy-mismatch", Severity::kError,
       "a path nests a phase type under a parent type that the model does "
       "not declare as its parent"},
      {"trace-machine-mismatch", Severity::kWarning,
       "BEGIN and END of one instance disagree on the machine id"},
      {"trace-missing-parent", Severity::kError,
       "a non-root instance's parent path never appears in the log"},
      {"trace-nonmonotonic-time", Severity::kError,
       "a phase instance ends before it begins"},
      {"trace-orphan-machine", Severity::kWarning,
       "a blocking event or sample names a machine id that no phase event "
       "mentions"},
      {"trace-overlapping-siblings", Severity::kError,
       "two instances of a repeated type overlap under one parent; repeated "
       "instances must run sequentially"},
      {"trace-sample-blocking-resource", Severity::kError,
       "a monitoring sample targets a blocking resource, which has no "
       "consumption rate"},
      {"trace-sample-gap", Severity::kWarning,
       "a monitoring series has a gap well beyond its sampling period "
       "(dropped samples?)"},
      {"trace-sample-negative", Severity::kError,
       "a monitoring sample reports a negative consumption rate"},
      {"trace-sample-nonmonotonic", Severity::kError,
       "a monitoring series repeats or decreases its sample time"},
      {"trace-sample-over-capacity", Severity::kWarning,
       "a monitoring sample exceeds the resource's declared capacity "
       "(suspected unit mismatch)"},
      {"trace-sample-unknown-resource", Severity::kError,
       "a monitoring sample names a resource missing from the model"},
      {"trace-syntax", Severity::kError,
       "a log line is malformed (reported by the log parser)"},
      {"trace-unbalanced-begin", Severity::kError,
       "a phase instance begins but never ends (truncated log?)"},
      {"trace-unbalanced-end", Severity::kError,
       "a phase instance ends without ever beginning"},
      {"trace-unknown-phase-type", Severity::kError,
       "a path uses a phase type missing from the model"},
  };
  return kCatalog;
}

const RuleInfo* find_rule(std::string_view rule_id) {
  const auto& catalog = rule_catalog();
  const auto it = std::lower_bound(
      catalog.begin(), catalog.end(), rule_id,
      [](const RuleInfo& info, std::string_view id) { return info.id < id; });
  return it != catalog.end() && it->id == rule_id ? &*it : nullptr;
}

}  // namespace g10::lint
