#include "grade10/det_fold.hpp"

#include <string>

namespace g10::core {
namespace {

std::string resource_stream(std::string_view prefix,
                            const ResourceModel& resources, ResourceId id,
                            trace::MachineId machine) {
  std::string key(prefix);
  key += '/';
  key += resources.resource(id).name;
  key += "/m";
  key += std::to_string(machine);
  return key;
}

}  // namespace

DetSummary fold_characterization(const CharacterizationResult& result,
                                 const ResourceModel& resources) {
  DetHasher hasher;

  // Instance tree: timing, placement, and blocked intervals per phase path.
  for (const PhaseInstance& instance : result.trace.instances()) {
    hasher.fold_i64(instance.path, instance.begin);
    hasher.fold_i64(instance.path, instance.end);
    hasher.fold_i64(instance.path, instance.machine);
    hasher.fold_u64(instance.path, instance.degraded ? 1 : 0);
    for (const Interval& interval : instance.blocked) {
      hasher.fold_i64(instance.path, interval.begin);
      hasher.fold_i64(instance.path, interval.end);
    }
  }

  // Attribution: every (resource, machine) series and its per-slice entries,
  // keyed by the phase instance the usage was attributed to.
  for (const AttributedResource& attributed : result.usage.resources) {
    const std::string stream = resource_stream("usage", resources,
                                               attributed.resource,
                                               attributed.machine);
    for (const double usage : attributed.upsampled.usage) {
      hasher.fold_double(stream, usage);
    }
    for (const double unattributed : attributed.unattributed) {
      hasher.fold_double(stream, unattributed);
    }
    for (const AttributionEntry& entry : attributed.entries) {
      const PhaseInstance& instance = result.trace.instance(entry.instance);
      hasher.fold_double(instance.path, entry.usage);
      hasher.fold_double(instance.path, entry.demand);
      hasher.fold_double(instance.path, entry.fraction);
    }
  }

  // Bottlenecks: classifications per phase instance (ordered maps), plus
  // the per-resource saturation timelines.
  const auto fold_classified =
      [&](const std::map<std::pair<InstanceId, ResourceId>, DurationNs>& map,
          std::uint64_t tag) {
        for (const auto& [key, duration] : map) {
          const PhaseInstance& instance = result.trace.instance(key.first);
          hasher.fold_u64(instance.path, tag);
          hasher.fold_i64(instance.path, key.second);
          hasher.fold_i64(instance.path, duration);
        }
      };
  fold_classified(result.bottlenecks.blocked, 1);
  fold_classified(result.bottlenecks.saturated, 2);
  fold_classified(result.bottlenecks.self_limited, 3);
  for (const ResourceSaturation& saturation : result.bottlenecks.saturation) {
    const std::string stream = resource_stream("saturation", resources,
                                               saturation.resource,
                                               saturation.machine);
    hasher.fold_bytes(stream,
                      std::string_view(saturation.saturated.data(),
                                       saturation.saturated.size()));
    hasher.fold_i64(stream, saturation.total_saturated);
  }

  // Issues: the ranked list that heads every report.
  for (const PerformanceIssue& issue : result.issues) {
    hasher.fold_bytes("issues", issue.description);
    hasher.fold_i64("issues", issue.baseline_makespan);
    hasher.fold_i64("issues", issue.optimistic_makespan);
    hasher.fold_double("issues", issue.impact);
  }
  hasher.fold_i64("run/baseline_makespan", result.baseline_makespan);
  return hasher.summary();
}

}  // namespace g10::core
