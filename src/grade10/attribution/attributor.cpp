#include "grade10/attribution/attributor.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace g10::core {

namespace {

constexpr double kEps = 1e-12;

bool in_subtree(const ExecutionTrace& trace, InstanceId node,
                InstanceId subtree_root) {
  while (node != kNoInstance) {
    if (node == subtree_root) return true;
    node = trace.instance(node).parent;
  }
  return false;
}

/// Upsampling + per-slice attribution of one (resource, machine) matrix.
AttributedResource attribute_one(const DemandMatrix& matrix,
                                 const ResourceSeries& series,
                                 const TimesliceGrid& grid,
                                 bool constant_strawman) {
  AttributedResource out;
  out.resource = matrix.resource;
  out.machine = matrix.machine;
  out.capacity = matrix.capacity;
  out.upsampled = constant_strawman ? upsample_constant(matrix, series, grid)
                                    : upsample(matrix, series, grid);
  const auto slices = static_cast<std::size_t>(matrix.slice_count);
  G10_ASSERT_MSG(out.upsampled.usage.size() == slices,
                 "upsampled series does not tile the timeslice grid");
  out.unattributed.assign(slices, 0.0);
  out.slice_offsets.assign(slices + 1, 0);

  // Bucket leaf demands by slice (sparse: few active leaves per slice).
  std::vector<std::vector<const LeafDemand*>> per_slice(slices);
  for (const LeafDemand& leaf : matrix.leaves) {
    for (std::size_t i = 0; i < leaf.active_fraction.size(); ++i) {
      if (leaf.active_fraction[i] <= 0.0) continue;
      const auto slice = static_cast<std::size_t>(leaf.first_slice) + i;
      if (slice < slices) per_slice[slice].push_back(&leaf);
    }
  }

  for (std::size_t s = 0; s < slices; ++s) {
    out.slice_offsets[s] = static_cast<std::uint32_t>(out.entries.size());
    const double consumption = out.upsampled.usage[s];
    const auto& leaves = per_slice[s];
    if (leaves.empty()) {
      out.unattributed[s] = consumption;
      continue;
    }
    // Exact phases first, proportionally, capped at their demand.
    double sum_exact = 0.0;
    double sum_weight = 0.0;
    for (const LeafDemand* leaf : leaves) {
      const double frac = leaf->fraction(static_cast<TimesliceIndex>(s));
      if (leaf->rule.is_exact()) {
        sum_exact += leaf->rule.amount * frac;
      } else {
        sum_weight += leaf->rule.amount * frac;
      }
    }
    const double exact_scale =
        sum_exact > kEps ? std::min(1.0, consumption / sum_exact) : 0.0;
    double remaining = consumption - sum_exact * exact_scale;
    // Exact attribution is capped at the measured consumption, so the
    // residual handed to variable phases can never go negative (unless the
    // monitor itself reported a negative rate, which lint flags upstream).
    G10_ASSERT(remaining >= -kEps || consumption < 0.0);
    for (const LeafDemand* leaf : leaves) {
      const double frac = leaf->fraction(static_cast<TimesliceIndex>(s));
      AttributionEntry entry;
      entry.instance = leaf->instance;
      entry.fraction = frac;
      entry.exact = leaf->rule.is_exact();
      if (entry.exact) {
        entry.demand = leaf->rule.amount * frac;
        entry.usage = entry.demand * exact_scale;
      } else {
        entry.demand = leaf->rule.amount * frac;
        entry.usage = sum_weight > kEps
                          ? remaining * entry.demand / sum_weight
                          : 0.0;
      }
      out.entries.push_back(entry);
    }
    if (sum_weight <= kEps && remaining > kEps) {
      out.unattributed[s] = remaining;
    }
  }
  out.slice_offsets[slices] = static_cast<std::uint32_t>(out.entries.size());
  return out;
}

}  // namespace

const AttributedResource* AttributedUsage::find(
    ResourceId resource, trace::MachineId machine) const {
  for (const auto& r : resources) {
    if (r.resource == resource && r.machine == machine) return &r;
  }
  return nullptr;
}

AttributedUsage attribute_usage(const std::vector<DemandMatrix>& demand,
                                const ResourceTrace& monitored,
                                const TimesliceGrid& grid,
                                bool constant_strawman, ThreadPool* pool) {
  // Matrices without monitoring data are skipped; resolve the series up
  // front so the parallel slots line up with the demand order.
  std::vector<const ResourceSeries*> series(demand.size(), nullptr);
  for (std::size_t m = 0; m < demand.size(); ++m) {
    series[m] = monitored.find(demand[m].resource, demand[m].machine);
  }

  // Each matrix upsamples and attributes independently; results land in
  // per-index slots, so collection order matches the serial loop exactly.
  std::vector<AttributedResource> slots(demand.size());
  parallel_for(pool, demand.size(), 1, [&](std::size_t m) {
    if (series[m] == nullptr) return;
    slots[m] = attribute_one(demand[m], *series[m], grid, constant_strawman);
  });

  AttributedUsage result;
  for (std::size_t m = 0; m < demand.size(); ++m) {
    if (series[m] == nullptr) continue;
    result.resources.push_back(std::move(slots[m]));
  }
  return result;
}

double subtree_usage(const AttributedResource& resource,
                     const ExecutionTrace& trace, InstanceId subtree_root,
                     const TimesliceGrid& grid) {
  double unit_slices = 0.0;
  for (const AttributionEntry& entry : resource.entries) {
    if (in_subtree(trace, entry.instance, subtree_root)) {
      unit_slices += entry.usage;
    }
  }
  return unit_slices * to_seconds(grid.slice_duration());
}

std::vector<double> subtree_usage_series(const AttributedResource& resource,
                                         const ExecutionTrace& trace,
                                         InstanceId subtree_root) {
  std::vector<double> series(
      static_cast<std::size_t>(resource.slice_count()), 0.0);
  for (TimesliceIndex s = 0; s < resource.slice_count(); ++s) {
    for (const AttributionEntry& entry : resource.slice_entries(s)) {
      if (in_subtree(trace, entry.instance, subtree_root)) {
        series[static_cast<std::size_t>(s)] += entry.usage;
      }
    }
  }
  return series;
}

std::vector<double> subtree_demand_series(const DemandMatrix& demand,
                                          const ExecutionTrace& trace,
                                          InstanceId subtree_root) {
  std::vector<double> series(static_cast<std::size_t>(demand.slice_count),
                             0.0);
  for (const LeafDemand& leaf : demand.leaves) {
    if (!in_subtree(trace, leaf.instance, subtree_root)) continue;
    for (std::size_t i = 0; i < leaf.active_fraction.size(); ++i) {
      const auto slice = static_cast<std::size_t>(leaf.first_slice) + i;
      if (slice < series.size()) {
        series[slice] += leaf.rule.amount * leaf.active_fraction[i];
      }
    }
  }
  return series;
}

}  // namespace g10::core
