#include "grade10/attribution/upsample.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace g10::core {

namespace {

constexpr double kEps = 1e-12;

struct SliceSpan {
  TimesliceIndex first = 0;
  std::vector<double> weight;  ///< coverage fraction of each slice
};

/// Slices covered by [begin, end) with their coverage fractions.
SliceSpan covered_slices(TimeNs begin, TimeNs end, const TimesliceGrid& grid) {
  G10_ASSERT_MSG(end > begin, "measurement window must be non-empty");
  SliceSpan span;
  span.first = grid.slice_of(begin);
  const TimesliceIndex last = grid.slice_count(end) - 1;
  span.weight.assign(static_cast<std::size_t>(last - span.first + 1), 0.0);
  const Interval window{begin, end};
  const double slice_len = static_cast<double>(grid.slice_duration());
  for (TimesliceIndex s = span.first; s <= last; ++s) {
    span.weight[static_cast<std::size_t>(s - span.first)] =
        static_cast<double>(window.overlap(grid.start_of(s), grid.end_of(s))) /
        slice_len;
  }
  return span;
}

UpsampledSeries make_series(const DemandMatrix& demand) {
  UpsampledSeries out;
  out.resource = demand.resource;
  out.machine = demand.machine;
  out.capacity = demand.capacity;
  out.usage.assign(static_cast<std::size_t>(demand.slice_count), 0.0);
  return out;
}

}  // namespace

UpsampledSeries upsample(const DemandMatrix& demand,
                         const ResourceSeries& series,
                         const TimesliceGrid& grid) {
  UpsampledSeries out = make_series(demand);
  const double slice_len = static_cast<double>(grid.slice_duration());

  for (const Measurement& m : series.measurements) {
    if (m.end <= m.begin) continue;
    const SliceSpan span = covered_slices(m.begin, m.end, grid);
    const std::size_t count = span.weight.size();
    // Total measured mass in unit·slices.
    double remaining =
        m.value * static_cast<double>(m.end - m.begin) / slice_len;
    if (remaining <= kEps) continue;

    std::vector<double> alloc(count, 0.0);
    std::vector<double> cap(count);
    std::vector<double> known(count);
    std::vector<double> weight(count);
    double sum_known = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      const auto slice = static_cast<std::size_t>(span.first) + i;
      const double w = span.weight[i];
      cap[i] = demand.capacity * w;
      known[i] =
          slice < demand.exact.size() ? demand.exact[slice] * w : 0.0;
      known[i] = std::min(known[i], cap[i]);
      weight[i] =
          slice < demand.variable.size() ? demand.variable[slice] * w : 0.0;
      sum_known += known[i];
    }

    // Step 1: satisfy known (Exact) demand proportionally, capped at it.
    if (sum_known > kEps) {
      const double scale = std::min(1.0, remaining / sum_known);
      for (std::size_t i = 0; i < count; ++i) {
        alloc[i] = known[i] * scale;
      }
      remaining -= sum_known * scale;
    }

    // Step 2: water-fill the remainder proportionally to Variable demand,
    // clipped at capacity; if no variable demand has headroom left, fall
    // back to headroom-proportional placement (unmodeled system usage).
    for (int round = 0; round < 64 && remaining > kEps; ++round) {
      double total_weight = 0.0;
      for (std::size_t i = 0; i < count; ++i) {
        if (cap[i] - alloc[i] > kEps && weight[i] > 0.0) {
          total_weight += weight[i];
        }
      }
      bool by_headroom = false;
      if (total_weight <= kEps) {
        // Fall back: weight by remaining headroom.
        for (std::size_t i = 0; i < count; ++i) {
          total_weight += std::max(0.0, cap[i] - alloc[i]);
        }
        by_headroom = true;
        if (total_weight <= kEps) break;  // everything saturated
      }
      double placed = 0.0;
      for (std::size_t i = 0; i < count; ++i) {
        const double headroom = cap[i] - alloc[i];
        if (headroom <= kEps) continue;
        const double w = by_headroom ? headroom : weight[i];
        if (w <= 0.0) continue;
        const double share =
            std::min(headroom, remaining * w / total_weight);
        alloc[i] += share;
        placed += share;
      }
      remaining -= placed;
      if (placed <= kEps) break;
    }
    out.unallocated += std::max(0.0, remaining);

    for (std::size_t i = 0; i < count; ++i) {
      const auto slice = static_cast<std::size_t>(span.first) + i;
      if (slice < out.usage.size()) out.usage[slice] += alloc[i];
    }
  }
  return out;
}

UpsampledSeries upsample_constant(const DemandMatrix& demand,
                                  const ResourceSeries& series,
                                  const TimesliceGrid& grid) {
  UpsampledSeries out = make_series(demand);
  for (const Measurement& m : series.measurements) {
    if (m.end <= m.begin) continue;
    const SliceSpan span = covered_slices(m.begin, m.end, grid);
    for (std::size_t i = 0; i < span.weight.size(); ++i) {
      const auto slice = static_cast<std::size_t>(span.first) + i;
      if (slice < out.usage.size()) {
        out.usage[slice] += m.value * span.weight[i];
      }
    }
  }
  return out;
}

}  // namespace g10::core
