// Resource-trace upsampling (paper §III-D2).
//
// Converts each coarse measurement (average rate over multiple timeslices)
// into per-timeslice consumption by superimposing it on the demand matrix:
// the measured mass is first given to slices with known (Exact) demand,
// proportionally and without exceeding it; the remainder is water-filled
// proportionally to the Variable demand, never exceeding capacity. A
// constant-rate strawman is provided for the Table II comparison.
#pragma once

#include <vector>

#include "common/time.hpp"
#include "grade10/attribution/demand.hpp"
#include "grade10/trace/resource_trace.hpp"

namespace g10::core {

struct UpsampledSeries {
  ResourceId resource = kNoResource;
  trace::MachineId machine = trace::kGlobalMachine;
  double capacity = 0.0;
  /// Average consumption rate per slice, in resource units.
  std::vector<double> usage;
  /// Measured mass (unit·slices) that could not be placed because every
  /// covered slice was at capacity. Nonzero values indicate a mis-modeled
  /// resource (or capacity) and are surfaced in reports.
  double unallocated = 0.0;
};

/// Grade10's demand-guided upsampling.
UpsampledSeries upsample(const DemandMatrix& demand,
                         const ResourceSeries& series,
                         const TimesliceGrid& grid);

/// Strawman: assume the rate was constant over each measurement window.
UpsampledSeries upsample_constant(const DemandMatrix& demand,
                                  const ResourceSeries& series,
                                  const TimesliceGrid& grid);

}  // namespace g10::core
