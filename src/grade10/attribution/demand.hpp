// Resource demand estimation (paper §III-D1).
//
// For every consumable resource instance (resource × machine), builds the
// timeslice-granular demand matrix: the summed Exact demand and summed
// Variable weight of the leaf phases active in each slice, where "active"
// means started, not ended, and not interrupted by a blocking event. Phase
// activity is weighted by the fraction of the slice it covers, which reduces
// to the paper's boundary-aligned formulation when phases align with slices.
#pragma once

#include <vector>

#include "common/time.hpp"
#include "grade10/model/attribution_rules.hpp"
#include "grade10/trace/execution_trace.hpp"

namespace g10 {
class ThreadPool;
}

namespace g10::core {

/// One leaf phase's contribution to a demand matrix.
struct LeafDemand {
  InstanceId instance = kNoInstance;
  AttributionRule rule;
  TimesliceIndex first_slice = 0;
  /// Active fraction of each slice in [first_slice, first_slice + size).
  std::vector<double> active_fraction;

  double fraction(TimesliceIndex slice) const {
    const auto offset = slice - first_slice;
    if (offset < 0 ||
        offset >= static_cast<TimesliceIndex>(active_fraction.size())) {
      return 0.0;
    }
    return active_fraction[static_cast<std::size_t>(offset)];
  }
};

/// Demand matrix of one resource instance.
struct DemandMatrix {
  ResourceId resource = kNoResource;
  trace::MachineId machine = trace::kGlobalMachine;
  double capacity = 0.0;
  TimesliceIndex slice_count = 0;
  std::vector<double> exact;     ///< per slice: summed Exact demand (units)
  std::vector<double> variable;  ///< per slice: summed Variable weight
  std::vector<LeafDemand> leaves;
};

/// Builds one matrix per (consumable resource, machine) pair — or one
/// global matrix for globally-scoped resources. `slice_count` slices cover
/// the whole trace. With a pool, matrices are filled in parallel (one task
/// per matrix); the result is bit-identical to the serial path.
std::vector<DemandMatrix> estimate_demand(const ResourceModel& resources,
                                          const AttributionRuleSet& rules,
                                          const ExecutionTrace& trace,
                                          const TimesliceGrid& grid,
                                          ThreadPool* pool = nullptr);

}  // namespace g10::core
