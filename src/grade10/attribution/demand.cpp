#include "grade10/attribution/demand.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace g10::core {

namespace {

/// Per-slice active fraction of one leaf.
LeafDemand make_leaf_demand(const PhaseInstance& leaf,
                            const AttributionRule& rule,
                            const TimesliceGrid& grid) {
  LeafDemand demand;
  demand.instance = leaf.id;
  demand.rule = rule;
  demand.first_slice = grid.slice_of(leaf.begin);
  const TimesliceIndex last = leaf.end > leaf.begin
                                  ? grid.slice_count(leaf.end) - 1
                                  : demand.first_slice;
  demand.active_fraction.assign(
      static_cast<std::size_t>(last - demand.first_slice + 1), 0.0);
  const auto active = active_intervals(leaf.begin, leaf.end, leaf.blocked);
  const double slice_len = static_cast<double>(grid.slice_duration());
  for (const auto& interval : active) {
    TimesliceIndex s = grid.slice_of(interval.begin);
    while (s * grid.slice_duration() < interval.end) {
      const DurationNs overlap =
          interval.overlap(grid.start_of(s), grid.end_of(s));
      demand.active_fraction[static_cast<std::size_t>(s - demand.first_slice)] +=
          static_cast<double>(overlap) / slice_len;
      ++s;
    }
  }
  return demand;
}

}  // namespace

std::vector<DemandMatrix> estimate_demand(const ResourceModel& resources,
                                          const AttributionRuleSet& rules,
                                          const ExecutionTrace& trace,
                                          const TimesliceGrid& grid) {
  const TimesliceIndex slice_count =
      trace.end_time() > 0 ? grid.slice_count(trace.end_time()) : 0;

  std::vector<DemandMatrix> matrices;
  for (ResourceId r = 0; r < static_cast<ResourceId>(resources.resource_count());
       ++r) {
    const Resource& resource = resources.resource(r);
    if (resource.kind != ResourceKind::kConsumable) continue;
    if (resource.scope == ResourceScope::kGlobal) {
      DemandMatrix matrix;
      matrix.resource = r;
      matrix.machine = trace::kGlobalMachine;
      matrix.capacity = resource.capacity;
      matrices.push_back(std::move(matrix));
    } else {
      for (const trace::MachineId machine : trace.machines()) {
        DemandMatrix matrix;
        matrix.resource = r;
        matrix.machine = machine;
        matrix.capacity = resource.capacity;
        matrices.push_back(std::move(matrix));
      }
    }
  }

  for (auto& matrix : matrices) {
    matrix.slice_count = slice_count;
    matrix.exact.assign(static_cast<std::size_t>(slice_count), 0.0);
    matrix.variable.assign(static_cast<std::size_t>(slice_count), 0.0);
    const bool global =
        resources.resource(matrix.resource).scope == ResourceScope::kGlobal;
    for (const InstanceId leaf_id : trace.leaves()) {
      const PhaseInstance& leaf = trace.instance(leaf_id);
      if (!global && leaf.machine != matrix.machine) continue;
      const AttributionRule rule = rules.get(leaf.type, matrix.resource);
      if (rule.is_none()) continue;
      if (leaf.duration() <= 0) continue;
      LeafDemand demand = make_leaf_demand(leaf, rule, grid);
      for (std::size_t i = 0; i < demand.active_fraction.size(); ++i) {
        const double frac = demand.active_fraction[i];
        if (frac <= 0.0) continue;
        const auto slice =
            static_cast<std::size_t>(demand.first_slice) + i;
        if (rule.is_exact()) {
          matrix.exact[slice] += rule.amount * frac;
        } else {
          matrix.variable[slice] += rule.amount * frac;
        }
      }
      matrix.leaves.push_back(std::move(demand));
    }
  }
  return matrices;
}

}  // namespace g10::core
