#include "grade10/attribution/demand.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace g10::core {

namespace {

/// Per-slice active fraction of one leaf.
LeafDemand make_leaf_demand(const PhaseInstance& leaf,
                            const AttributionRule& rule,
                            const TimesliceGrid& grid) {
  LeafDemand demand;
  demand.instance = leaf.id;
  demand.rule = rule;
  demand.first_slice = grid.slice_of(leaf.begin);
  const TimesliceIndex last = leaf.end > leaf.begin
                                  ? grid.slice_count(leaf.end) - 1
                                  : demand.first_slice;
  demand.active_fraction.assign(
      static_cast<std::size_t>(last - demand.first_slice + 1), 0.0);
  const auto active = active_intervals(leaf.begin, leaf.end, leaf.blocked);
  const double slice_len = static_cast<double>(grid.slice_duration());
  for (const auto& interval : active) {
    if (interval.end <= interval.begin) continue;
    // First and last overlapped slices computed arithmetically; every slice
    // strictly between them is fully covered and contributes exactly 1.0
    // (overlap == slice_duration), so no per-slice overlap math is needed.
    const TimesliceIndex first = grid.slice_of(interval.begin);
    const TimesliceIndex final = grid.slice_count(interval.end) - 1;
    G10_ASSERT_MSG(first >= demand.first_slice && final <= last,
                   "active interval escapes its leaf's slice range");
    if (first == final) {
      demand.active_fraction[static_cast<std::size_t>(
          first - demand.first_slice)] +=
          static_cast<double>(interval.length()) / slice_len;
      continue;
    }
    demand.active_fraction[static_cast<std::size_t>(
        first - demand.first_slice)] +=
        static_cast<double>(grid.end_of(first) - interval.begin) / slice_len;
    for (TimesliceIndex s = first + 1; s < final; ++s) {
      demand.active_fraction[static_cast<std::size_t>(
          s - demand.first_slice)] += 1.0;
    }
    demand.active_fraction[static_cast<std::size_t>(
        final - demand.first_slice)] +=
        static_cast<double>(interval.end - grid.start_of(final)) / slice_len;
  }
  return demand;
}

/// Fills one (resource, machine) matrix with the demand of its leaves.
void fill_matrix(DemandMatrix& matrix, const ResourceModel& resources,
                 const AttributionRuleSet& rules, const ExecutionTrace& trace,
                 const TimesliceGrid& grid, TimesliceIndex slice_count) {
  matrix.slice_count = slice_count;
  matrix.exact.assign(static_cast<std::size_t>(slice_count), 0.0);
  matrix.variable.assign(static_cast<std::size_t>(slice_count), 0.0);
  const bool global =
      resources.resource(matrix.resource).scope == ResourceScope::kGlobal;
  for (const InstanceId leaf_id : trace.leaves()) {
    const PhaseInstance& leaf = trace.instance(leaf_id);
    if (!global && leaf.machine != matrix.machine) continue;
    const AttributionRule rule = rules.get(leaf.type, matrix.resource);
    if (rule.is_none()) continue;
    if (leaf.duration() <= 0) continue;
    LeafDemand demand = make_leaf_demand(leaf, rule, grid);
    for (std::size_t i = 0; i < demand.active_fraction.size(); ++i) {
      const double frac = demand.active_fraction[i];
      if (frac <= 0.0) continue;
      const auto slice = static_cast<std::size_t>(demand.first_slice) + i;
      if (rule.is_exact()) {
        matrix.exact[slice] += rule.amount * frac;
      } else {
        matrix.variable[slice] += rule.amount * frac;
      }
    }
    matrix.leaves.push_back(std::move(demand));
  }
}

}  // namespace

std::vector<DemandMatrix> estimate_demand(const ResourceModel& resources,
                                          const AttributionRuleSet& rules,
                                          const ExecutionTrace& trace,
                                          const TimesliceGrid& grid,
                                          ThreadPool* pool) {
  const TimesliceIndex slice_count =
      trace.end_time() > 0 ? grid.slice_count(trace.end_time()) : 0;

  std::vector<DemandMatrix> matrices;
  for (ResourceId r = 0; r < static_cast<ResourceId>(resources.resource_count());
       ++r) {
    const Resource& resource = resources.resource(r);
    if (resource.kind != ResourceKind::kConsumable) continue;
    if (resource.scope == ResourceScope::kGlobal) {
      DemandMatrix matrix;
      matrix.resource = r;
      matrix.machine = trace::kGlobalMachine;
      matrix.capacity = resource.capacity;
      matrices.push_back(std::move(matrix));
    } else {
      for (const trace::MachineId machine : trace.machines()) {
        DemandMatrix matrix;
        matrix.resource = r;
        matrix.machine = machine;
        matrix.capacity = resource.capacity;
        matrices.push_back(std::move(matrix));
      }
    }
  }

  // Each (resource, machine) matrix is independent; fan out one per task.
  // Every matrix is filled by exactly one thread, so the result is
  // bit-identical to the serial loop.
  parallel_for(pool, matrices.size(), 1, [&](std::size_t m) {
    fill_matrix(matrices[m], resources, rules, trace, grid, slice_count);
  });
  return matrices;
}

}  // namespace g10::core
