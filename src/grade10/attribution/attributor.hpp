// Attribution of upsampled consumption to phases (paper §III-D3).
//
// For each resource instance and timeslice: active phases with Exact rules
// receive the consumption first, proportionally to and capped at their
// demand; the remainder is distributed over active Variable phases
// proportionally to their weights. The result is the paper's 3-D array
// (resource × timeslice × phase), stored slice-sparse.
#pragma once

#include <vector>

#include "common/time.hpp"
#include "grade10/attribution/demand.hpp"
#include "grade10/attribution/upsample.hpp"
#include "grade10/trace/resource_trace.hpp"

namespace g10::core {

struct AttributionEntry {
  InstanceId instance = kNoInstance;
  double usage = 0.0;     ///< units attributed in this slice
  double demand = 0.0;    ///< Exact demand (units) or Variable weight
  double fraction = 0.0;  ///< active fraction of the slice
  bool exact = false;
};

/// Full attribution result for one (resource, machine) instance.
struct AttributedResource {
  ResourceId resource = kNoResource;
  trace::MachineId machine = trace::kGlobalMachine;
  double capacity = 0.0;
  UpsampledSeries upsampled;
  /// entries for slice s live in entries[slice_offsets[s] ..
  /// slice_offsets[s+1]).
  std::vector<std::uint32_t> slice_offsets;
  std::vector<AttributionEntry> entries;
  /// Consumption not attributable to any active phase, per slice.
  std::vector<double> unattributed;

  std::span<const AttributionEntry> slice_entries(TimesliceIndex s) const {
    return {entries.data() + slice_offsets[static_cast<std::size_t>(s)],
            entries.data() + slice_offsets[static_cast<std::size_t>(s) + 1]};
  }
  TimesliceIndex slice_count() const {
    return static_cast<TimesliceIndex>(slice_offsets.empty()
                                           ? 0
                                           : slice_offsets.size() - 1);
  }
};

struct AttributedUsage {
  std::vector<AttributedResource> resources;

  const AttributedResource* find(ResourceId resource,
                                 trace::MachineId machine) const;
};

/// Runs upsampling + per-slice attribution for every demand matrix with a
/// matching monitored series. Matrices without monitoring data are skipped.
/// `constant_strawman` replaces Grade10's upsampler with the constant-rate
/// baseline (Table II). With a pool, matrices are processed in parallel
/// (bit-identical to the serial path).
AttributedUsage attribute_usage(const std::vector<DemandMatrix>& demand,
                                const ResourceTrace& monitored,
                                const TimesliceGrid& grid,
                                bool constant_strawman = false,
                                ThreadPool* pool = nullptr);

/// Total usage (unit·seconds) attributed to the subtree rooted at
/// `subtree_root`, for one attributed resource.
double subtree_usage(const AttributedResource& resource,
                     const ExecutionTrace& trace, InstanceId subtree_root,
                     const TimesliceGrid& grid);

/// Per-slice usage series summed over the subtree's leaves (units).
std::vector<double> subtree_usage_series(const AttributedResource& resource,
                                         const ExecutionTrace& trace,
                                         InstanceId subtree_root);

/// Per-slice estimated demand series summed over the subtree's leaves:
/// Exact amounts plus Variable weights, each scaled by active fraction
/// (the "estimated CPU demand" curve of Fig. 3).
std::vector<double> subtree_demand_series(const DemandMatrix& demand,
                                          const ExecutionTrace& trace,
                                          InstanceId subtree_root);

}  // namespace g10::core
