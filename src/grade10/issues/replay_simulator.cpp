#include "grade10/issues/replay_simulator.hpp"

#include <algorithm>
#include <map>

#include "common/check.hpp"

namespace g10::core {

ReplaySimulator::ReplaySimulator(const ExecutionModel& model,
                                 const ExecutionTrace& trace)
    : model_(model), trace_(trace) {
  model_.validate();
  // Topological order of child types per parent (Kahn per sibling group).
  child_type_order_.resize(model_.type_count());
  for (std::size_t p = 0; p < model_.type_count(); ++p) {
    const auto& group = model_.type(static_cast<PhaseTypeId>(p)).children;
    std::map<PhaseTypeId, int> indegree;
    for (PhaseTypeId t : group) indegree[t] = 0;
    for (PhaseTypeId t : group) {
      for (PhaseTypeId succ : model_.type(t).successors) ++indegree[succ];
    }
    std::vector<PhaseTypeId> ready;
    for (PhaseTypeId t : group) {
      if (indegree[t] == 0) ready.push_back(t);
    }
    auto& order = child_type_order_[p];
    while (!ready.empty()) {
      // Deterministic: take the smallest id first.
      std::sort(ready.begin(), ready.end(), std::greater<>());
      const PhaseTypeId t = ready.back();
      ready.pop_back();
      order.push_back(t);
      for (PhaseTypeId succ : model_.type(t).successors) {
        if (--indegree[succ] == 0) ready.push_back(succ);
      }
    }
    G10_CHECK(order.size() == group.size());
  }
}

std::vector<DurationNs> ReplaySimulator::recorded_durations() const {
  std::vector<DurationNs> durations(trace_.instances().size(), 0);
  for (const InstanceId leaf : trace_.leaves()) {
    const PhaseInstance& instance = trace_.instance(leaf);
    durations[static_cast<std::size_t>(leaf)] = instance.duration();
  }
  return durations;
}

TimeNs ReplaySimulator::schedule_instance(
    InstanceId id, TimeNs start, const std::vector<DurationNs>& durations,
    ReplaySchedule& out) const {
  const PhaseInstance& instance = trace_.instance(id);
  out.start[static_cast<std::size_t>(id)] = start;
  if (instance.is_leaf()) {
    const DurationNs duration =
        model_.type(instance.type).wait
            ? 0
            : std::max<DurationNs>(0,
                                   durations[static_cast<std::size_t>(id)]);
    const TimeNs end = start + duration;
    out.end[static_cast<std::size_t>(id)] = end;
    return end;
  }

  // Group children by type; remember each type's instances sorted by index.
  std::map<PhaseTypeId, std::vector<InstanceId>> by_type;
  TimeNs latest_recorded_child_end = instance.begin;
  for (const InstanceId child : instance.children) {
    by_type[trace_.instance(child).type].push_back(child);
    latest_recorded_child_end =
        std::max(latest_recorded_child_end, trace_.instance(child).end);
  }
  for (auto& [type, list] : by_type) {
    std::sort(list.begin(), list.end(), [this](InstanceId a, InstanceId b) {
      return trace_.instance(a).index < trace_.instance(b).index;
    });
  }
  // The parent's own work after its last child (e.g. barrier sync cost).
  const DurationNs tail =
      std::max<DurationNs>(0, instance.end - latest_recorded_child_end);

  // End (and id) of already-scheduled children of a given type, by index.
  struct ChildEnd {
    TimeNs end = 0;
    InstanceId id = kNoInstance;
  };
  std::map<PhaseTypeId, std::map<std::int64_t, ChildEnd>> ends_by_type;
  TimeNs latest_child_end = start;
  InstanceId latest_child = kNoInstance;

  for (const PhaseTypeId type :
       child_type_order_[static_cast<std::size_t>(instance.type)]) {
    const auto it = by_type.find(type);
    if (it == by_type.end()) continue;
    const PhaseType& type_info = model_.type(type);

    // Concurrency slots (0 limit = unbounded).
    std::vector<TimeNs> slots;
    std::vector<InstanceId> slot_owner;
    if (type_info.concurrency_limit > 0) {
      slots.assign(static_cast<std::size_t>(type_info.concurrency_limit),
                   start);
      slot_owner.assign(slots.size(), kNoInstance);
    }

    TimeNs previous_end = start;  // for repeated types
    InstanceId previous_id = kNoInstance;
    for (const InstanceId child : it->second) {
      const PhaseInstance& child_instance = trace_.instance(child);
      TimeNs ready = start;
      InstanceId binding = kNoInstance;
      const auto raise = [&](TimeNs candidate, InstanceId source) {
        if (candidate > ready) {
          ready = candidate;
          binding = source;
        }
      };
      // Precedence from model edges, matched by instance index.
      for (const PhaseTypeId pred : type_info.predecessors) {
        const auto pit = ends_by_type.find(pred);
        if (pit == ends_by_type.end()) continue;
        const auto& pred_ends = pit->second;
        const auto exact = pred_ends.find(child_instance.index);
        if (exact != pred_ends.end()) {
          raise(exact->second.end, exact->second.id);
        } else {
          for (const auto& [index, pred_end] : pred_ends) {
            raise(pred_end.end, pred_end.id);
          }
        }
      }
      if (type_info.repeated) raise(previous_end, previous_id);
      auto slot = slots.end();
      if (!slots.empty()) {
        // List scheduling: earliest-free slot.
        slot = std::min_element(slots.begin(), slots.end());
        raise(*slot,
              slot_owner[static_cast<std::size_t>(slot - slots.begin())]);
      }
      out.binding_pred[static_cast<std::size_t>(child)] = binding;
      const TimeNs end = schedule_instance(child, ready, durations, out);
      if (!slots.empty()) {
        *slot = end;
        slot_owner[static_cast<std::size_t>(slot - slots.begin())] = child;
      }
      ends_by_type[type][child_instance.index] = ChildEnd{end, child};
      previous_end = end;
      previous_id = child;
      if (end > latest_child_end) {
        latest_child_end = end;
        latest_child = child;
      }
    }
  }

  out.binding_child[static_cast<std::size_t>(id)] = latest_child;
  const TimeNs end = latest_child_end + tail;
  out.end[static_cast<std::size_t>(id)] = end;
  return end;
}

ReplaySchedule ReplaySimulator::simulate(
    const std::vector<DurationNs>& leaf_durations) const {
  G10_CHECK(leaf_durations.size() == trace_.instances().size());
  ReplaySchedule schedule;
  schedule.start.assign(trace_.instances().size(), 0);
  schedule.end.assign(trace_.instances().size(), 0);
  schedule.binding_child.assign(trace_.instances().size(), kNoInstance);
  schedule.binding_pred.assign(trace_.instances().size(), kNoInstance);
  if (trace_.root() == kNoInstance) return schedule;
  schedule.makespan =
      schedule_instance(trace_.root(), 0, leaf_durations, schedule);
  return schedule;
}

std::vector<InstanceId> ReplaySimulator::critical_leaves(
    const ReplaySchedule& schedule) const {
  std::vector<InstanceId> path;
  if (trace_.root() == kNoInstance) return path;
  const auto descend = [&](InstanceId node) {
    while (schedule.binding_child[static_cast<std::size_t>(node)] !=
           kNoInstance) {
      node = schedule.binding_child[static_cast<std::size_t>(node)];
    }
    return node;
  };
  InstanceId cur = descend(trace_.root());
  // Generous bound against cycles (each step moves strictly earlier).
  for (std::size_t guard = 0; guard < 4 * trace_.instances().size();
       ++guard) {
    if (trace_.instance(cur).is_leaf()) path.push_back(cur);
    const InstanceId pred =
        schedule.binding_pred[static_cast<std::size_t>(cur)];
    if (pred != kNoInstance) {
      cur = descend(pred);
    } else if (trace_.instance(cur).parent != kNoInstance) {
      cur = trace_.instance(cur).parent;
    } else {
      break;
    }
  }
  std::reverse(path.begin(), path.end());
  return path;
}

TimeNs ReplaySimulator::baseline_makespan() const {
  return simulate(recorded_durations()).makespan;
}

}  // namespace g10::core
