#include "grade10/issues/issue_detector.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace g10::core {

IssueDetector::IssueDetector(const ExecutionModel& model,
                             const ResourceModel& resources,
                             const ExecutionTrace& trace,
                             const TimesliceGrid& grid,
                             const AnalysisConfig& config)
    : model_(model),
      resources_(resources),
      trace_(trace),
      grid_(grid),
      config_(config),
      simulator_(model, trace),
      recorded_(simulator_.recorded_durations()),
      baseline_(simulator_.simulate(recorded_).makespan) {}

namespace {

void collect_leaves(const ExecutionTrace& trace, InstanceId root,
                    std::vector<InstanceId>& out) {
  const PhaseInstance& instance = trace.instance(root);
  if (instance.is_leaf()) {
    out.push_back(root);
    return;
  }
  for (const InstanceId child : instance.children) {
    collect_leaves(trace, child, out);
  }
}

}  // namespace

std::vector<DurationNs> IssueDetector::balanced_durations(
    PhaseTypeId type) const {
  std::vector<DurationNs> adjusted = recorded_;

  // Group same-type instances by parent.
  std::map<InstanceId, std::vector<InstanceId>> groups;
  for (const PhaseInstance& instance : trace_.instances()) {
    if (instance.type == type && instance.parent != kNoInstance) {
      groups[instance.parent].push_back(instance.id);
    }
  }
  for (const auto& [parent, members] : groups) {
    if (members.size() < 2) continue;
    double total = 0.0;
    for (const InstanceId id : members) {
      total += static_cast<double>(trace_.instance(id).duration());
    }
    const double mean = total / static_cast<double>(members.size());
    for (const InstanceId id : members) {
      const auto duration =
          static_cast<double>(trace_.instance(id).duration());
      const PhaseInstance& instance = trace_.instance(id);
      if (instance.is_leaf()) {
        adjusted[static_cast<std::size_t>(id)] =
            static_cast<DurationNs>(mean);
        continue;
      }
      if (duration <= 0.0) continue;
      const double factor = mean / duration;
      std::vector<InstanceId> leaves;
      collect_leaves(trace_, id, leaves);
      for (const InstanceId leaf : leaves) {
        adjusted[static_cast<std::size_t>(leaf)] = static_cast<DurationNs>(
            static_cast<double>(adjusted[static_cast<std::size_t>(leaf)]) *
            factor);
      }
    }
  }
  return adjusted;
}

PerformanceIssue IssueDetector::imbalance_issue(PhaseTypeId type) const {
  PerformanceIssue issue;
  issue.kind = IssueKind::kImbalance;
  issue.phase_type = type;
  issue.description =
      "imbalance across concurrent '" + model_.type(type).name + "' phases";
  issue.baseline_makespan = baseline_;
  issue.optimistic_makespan =
      simulator_.simulate(balanced_durations(type)).makespan;
  issue.impact =
      baseline_ > 0
          ? static_cast<double>(baseline_ - issue.optimistic_makespan) /
                static_cast<double>(baseline_)
          : 0.0;
  return issue;
}

PerformanceIssue IssueDetector::bottleneck_issue(
    ResourceId resource, const AttributedUsage& usage,
    const BottleneckReport& bottlenecks) const {
  PerformanceIssue issue;
  issue.kind = IssueKind::kResourceBottleneck;
  issue.resource = resource;
  issue.description =
      "bottleneck on resource '" + resources_.resource(resource).name + "'";
  issue.baseline_makespan = baseline_;

  std::vector<DurationNs> adjusted = recorded_;
  // Per-slice shrinks are accumulated in floating point and applied once
  // per instance, so slice-granularity rounding does not bias the result.
  std::vector<double> shrink_by_instance(recorded_.size(), 0.0);
  const Resource& spec = resources_.resource(resource);
  if (spec.kind == ResourceKind::kBlocking) {
    for (const auto& [key, blocked_time] : bottlenecks.blocked) {
      if (key.second != resource) continue;
      auto& duration = adjusted[static_cast<std::size_t>(key.first)];
      duration = std::max<DurationNs>(0, duration - blocked_time);
    }
  } else {
    const double slice_len = static_cast<double>(grid_.slice_duration());
    for (const AttributedResource& ar : usage.resources) {
      if (ar.resource != resource) continue;
      const ResourceSaturation* saturation =
          bottlenecks.find_saturation(resource, ar.machine);
      // Utilization of the other consumable resources on this machine: the
      // next binding constraint once `resource` is removed.
      std::vector<const AttributedResource*> others;
      for (const AttributedResource& other : usage.resources) {
        if (other.machine == ar.machine && other.resource != resource) {
          others.push_back(&other);
        }
      }
      for (TimesliceIndex s = 0; s < ar.slice_count(); ++s) {
        const bool slice_saturated =
            saturation != nullptr &&
            saturation->saturated[static_cast<std::size_t>(s)] != 0;
        double next_binding = config_.min_shrink_fraction;
        for (const AttributedResource* other : others) {
          if (static_cast<std::size_t>(s) < other->upsampled.usage.size()) {
            next_binding = std::max(
                next_binding,
                other->upsampled.usage[static_cast<std::size_t>(s)] /
                    other->capacity);
          }
        }
        next_binding = std::min(next_binding, 1.0);
        const auto entries = ar.slice_entries(s);
        // Self-limited phases (pinned at their own Exact cap while the
        // resource has headroom) can at best absorb the slice's idle
        // capacity, shared among them — unlike a saturated resource,
        // nothing else frees up when the configuration limit is lifted.
        double self_limited_usage = 0.0;
        for (const AttributionEntry& entry : entries) {
          if (entry.exact && entry.demand > 0.0 &&
              entry.usage >= config_.exact_cap_threshold * entry.demand) {
            self_limited_usage += entry.usage;
          }
        }
        const double headroom = std::max(
            0.0,
            ar.capacity - ar.upsampled.usage[static_cast<std::size_t>(s)]);
        const double self_limit_factor =
            self_limited_usage > 0.0
                ? self_limited_usage / (self_limited_usage + headroom)
                : 1.0;
        for (const AttributionEntry& entry : entries) {
          const bool self_limited =
              entry.exact && entry.demand > 0.0 &&
              entry.usage >= config_.exact_cap_threshold * entry.demand;
          if (!slice_saturated && !self_limited) continue;
          const double factor =
              slice_saturated
                  ? next_binding
                  : std::max(next_binding, self_limit_factor);
          shrink_by_instance[static_cast<std::size_t>(entry.instance)] +=
              slice_len * entry.fraction * (1.0 - factor);
        }
      }
    }
    for (std::size_t i = 0; i < adjusted.size(); ++i) {
      if (shrink_by_instance[i] > 0.0) {
        adjusted[i] = std::max<DurationNs>(
            0, adjusted[i] - static_cast<DurationNs>(
                                 std::llround(shrink_by_instance[i])));
      }
    }
  }
  issue.optimistic_makespan = simulator_.simulate(adjusted).makespan;
  issue.impact =
      baseline_ > 0
          ? static_cast<double>(baseline_ - issue.optimistic_makespan) /
                static_cast<double>(baseline_)
          : 0.0;
  return issue;
}

PerformanceIssue IssueDetector::fault_recovery_issue() const {
  PerformanceIssue issue;
  issue.kind = IssueKind::kFaultRecovery;
  issue.description = "time lost to fault handling (crash recovery, retries)";
  std::vector<Interval> spans;
  for (const BlockingSpan& span : trace_.blocking()) {
    const std::string& name = resources_.resource(span.resource).name;
    if (std::find(config_.fault_resources.begin(),
                  config_.fault_resources.end(),
                  name) == config_.fault_resources.end()) {
      continue;
    }
    spans.push_back(span.interval);
  }
  const TimeNs end_time = trace_.end_time();
  issue.baseline_makespan = end_time;
  DurationNs blocked = 0;
  if (!spans.empty()) {
    std::sort(spans.begin(), spans.end(),
              [](const Interval& a, const Interval& b) {
                return a.begin < b.begin;
              });
    TimeNs cursor = spans.front().begin;
    for (const Interval& span : spans) {
      const TimeNs begin = std::max(span.begin, cursor);
      if (span.end > begin) {
        blocked += span.end - begin;
        cursor = span.end;
      }
    }
  }
  issue.optimistic_makespan = end_time - blocked;
  issue.impact = end_time > 0
                     ? static_cast<double>(blocked) /
                           static_cast<double>(end_time)
                     : 0.0;
  return issue;
}

std::vector<PerformanceIssue> IssueDetector::detect(
    const AttributedUsage& usage, const BottleneckReport& bottlenecks,
    ThreadPool* pool) {
  // Candidate enumeration is cheap and stays serial; evaluating a candidate
  // replays the whole trace, so that fans out — one task per candidate.
  struct Candidate {
    bool is_imbalance = false;
    ResourceId resource = kNoResource;
    PhaseTypeId type = kNoPhaseType;
  };
  std::vector<Candidate> candidates;
  for (ResourceId r = 0;
       r < static_cast<ResourceId>(resources_.resource_count()); ++r) {
    // Fault-class resources are covered by the dedicated fault-recovery
    // issue below; a bottleneck replay would zero their wait-type phases.
    const std::string& name = resources_.resource(r).name;
    if (std::find(config_.fault_resources.begin(),
                  config_.fault_resources.end(),
                  name) != config_.fault_resources.end()) {
      continue;
    }
    candidates.push_back({false, r, kNoPhaseType});
  }
  const std::size_t bottleneck_count = candidates.size();
  for (PhaseTypeId t = 0; t < static_cast<PhaseTypeId>(model_.type_count());
       ++t) {
    if (t == model_.root() || model_.type(t).wait) continue;
    // Only types that actually form concurrent sibling groups.
    std::map<InstanceId, int> counts;
    bool has_group = false;
    for (const PhaseInstance& instance : trace_.instances()) {
      if (instance.type == t && instance.parent != kNoInstance &&
          ++counts[instance.parent] >= 2) {
        has_group = true;
        break;
      }
    }
    if (has_group) candidates.push_back({true, kNoResource, t});
  }

  const std::vector<PerformanceIssue> evaluated =
      parallel_map(pool, candidates, [&](const Candidate& c) {
        return c.is_imbalance ? imbalance_issue(c.type)
                              : bottleneck_issue(c.resource, usage,
                                                 bottlenecks);
      });

  // Reassemble in the serial order (bottlenecks, fault recovery,
  // imbalances) so the impact sort below sees the same input sequence at
  // every thread count — ties then break identically.
  const auto fault_pos =
      evaluated.begin() + static_cast<std::ptrdiff_t>(bottleneck_count);
  std::vector<PerformanceIssue> issues(evaluated.begin(), fault_pos);
  {
    PerformanceIssue fault = fault_recovery_issue();
    if (fault.optimistic_makespan < fault.baseline_makespan) {
      issues.push_back(std::move(fault));
    }
  }
  issues.insert(issues.end(), fault_pos, evaluated.end());
  std::erase_if(issues, [this](const PerformanceIssue& issue) {
    return issue.impact < config_.min_issue_impact;
  });
  std::sort(issues.begin(), issues.end(),
            [](const PerformanceIssue& a, const PerformanceIssue& b) {
              return a.impact > b.impact;
            });
  return issues;
}

}  // namespace g10::core
