// Performance-issue detection (paper §III-F).
//
// For each candidate issue the detector derives adjusted leaf durations
// ("what if this issue were fixed?"), replays the trace, and reports the
// optimistic makespan reduction. Two issue classes are implemented, matching
// the paper:
//
//  - Resource bottlenecks: remove every bottleneck on one resource. For a
//    blocking resource, phases lose their blocked time. For a consumable
//    resource, each bottlenecked slice shrinks to the utilization of the
//    next-most-utilized resource on that machine (the next binding
//    constraint), with a configurable floor.
//
//  - Imbalanced execution: concurrent same-type sibling phases are set to
//    their mean duration (total work preserved; work is interchangeable
//    only within a group, per the paper's locality assumption). Non-leaf
//    groups scale their leaf descendants proportionally.
//
//  - Fault recovery: total wall-clock time covered by fault-class blocking
//    events (config.fault_resources — crash recovery and send retries).
//    Measured directly as the union of those blocked intervals over the
//    trace; the replay simulator is bypassed because recovery phases are
//    wait-type and would replay with zero duration.
#pragma once

#include <string>
#include <vector>

#include "grade10/attribution/attributor.hpp"
#include "grade10/bottleneck/bottleneck.hpp"
#include "grade10/config.hpp"
#include "grade10/issues/replay_simulator.hpp"

namespace g10::core {

enum class IssueKind { kResourceBottleneck, kImbalance, kFaultRecovery };

struct PerformanceIssue {
  IssueKind kind = IssueKind::kResourceBottleneck;
  ResourceId resource = kNoResource;    ///< bottleneck issues
  PhaseTypeId phase_type = kNoPhaseType;///< imbalance issues
  std::string description;
  TimeNs baseline_makespan = 0;
  TimeNs optimistic_makespan = 0;
  /// Upper bound on the makespan reduction: (baseline - optimistic) / baseline.
  double impact = 0.0;
};

class IssueDetector {
 public:
  IssueDetector(const ExecutionModel& model, const ResourceModel& resources,
                const ExecutionTrace& trace, const TimesliceGrid& grid,
                const AnalysisConfig& config);

  /// All issues whose impact clears config.min_issue_impact, sorted by
  /// descending impact. With a pool, candidate issues are evaluated in
  /// parallel (one replay each) and reassembled in the serial order.
  std::vector<PerformanceIssue> detect(const AttributedUsage& usage,
                                       const BottleneckReport& bottlenecks,
                                       ThreadPool* pool = nullptr);

  /// The imbalance issue for one phase type (used by the Fig. 5/6 benches
  /// regardless of the reporting threshold). Thread-safe.
  PerformanceIssue imbalance_issue(PhaseTypeId type) const;

  /// The bottleneck-removal issue for one resource. Thread-safe.
  PerformanceIssue bottleneck_issue(ResourceId resource,
                                    const AttributedUsage& usage,
                                    const BottleneckReport& bottlenecks) const;

  /// The fault-recovery issue: union of blocked intervals on the
  /// config.fault_resources over the whole trace. Impact is relative to
  /// the recorded end time, not the replay baseline.
  PerformanceIssue fault_recovery_issue() const;

  TimeNs baseline_makespan() const { return baseline_; }
  const ReplaySimulator& simulator() const { return simulator_; }

 private:
  std::vector<DurationNs> balanced_durations(PhaseTypeId type) const;

  const ExecutionModel& model_;
  const ResourceModel& resources_;
  const ExecutionTrace& trace_;
  TimesliceGrid grid_;
  AnalysisConfig config_;
  ReplaySimulator simulator_;
  std::vector<DurationNs> recorded_;
  TimeNs baseline_ = 0;
};

}  // namespace g10::core
