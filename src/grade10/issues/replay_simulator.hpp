// Trace-replay simulator (paper §III-F).
//
// Replays a recorded execution trace under a simplified system model: every
// leaf phase has a fixed duration, there are no delays between phases, and
// the schedule obeys (a) the execution model's precedence edges (matched by
// instance index, e.g. WorkerPrepare.2 before WorkerCompute.2), (b) the
// sequential order of repeated types, (c) per-parent concurrency limits
// (thread slots), and (d) containment (children run inside their parent).
// Wait-type phases (barrier waits) are given zero duration — their recorded
// length is slack that the simulator re-derives from the schedule.
//
// Issue detectors call simulate() with adjusted leaf durations to obtain
// optimistic makespans ("how much faster would the run be if X were
// fixed?").
#pragma once

#include <vector>

#include "common/time.hpp"
#include "grade10/model/execution_model.hpp"
#include "grade10/trace/execution_trace.hpp"

namespace g10::core {

struct ReplaySchedule {
  std::vector<TimeNs> start;  ///< indexed by InstanceId
  std::vector<TimeNs> end;
  TimeNs makespan = 0;

  /// Critical-path bookkeeping: for a non-leaf, the child whose simulated
  /// end determined the parent's end; for any instance, the sibling (or
  /// slot predecessor) whose end determined this instance's start, or
  /// kNoInstance when the parent's start was binding.
  std::vector<InstanceId> binding_child;
  std::vector<InstanceId> binding_pred;
};

class ReplaySimulator {
 public:
  ReplaySimulator(const ExecutionModel& model, const ExecutionTrace& trace);

  /// Leaf durations to replay with; indexed by InstanceId (entries for
  /// non-leaves are ignored). Wait-type leaves are forced to zero.
  ReplaySchedule simulate(const std::vector<DurationNs>& leaf_durations) const;

  /// The recorded leaf durations (the identity replay input).
  std::vector<DurationNs> recorded_durations() const;

  /// Makespan of the identity replay; cached on first use is not needed —
  /// callers typically hold on to it.
  TimeNs baseline_makespan() const;

  /// The chain of leaf instances whose durations determine the makespan,
  /// in execution order. Gaps covered by parent tails (e.g. barrier sync
  /// costs) are not represented by a leaf.
  std::vector<InstanceId> critical_leaves(const ReplaySchedule& schedule) const;

 private:
  struct SiblingGroup {
    PhaseTypeId type = kNoPhaseType;
    std::vector<InstanceId> instances;  ///< sorted by index
  };

  TimeNs schedule_instance(InstanceId id, TimeNs start,
                           const std::vector<DurationNs>& durations,
                           ReplaySchedule& out) const;

  const ExecutionModel& model_;
  const ExecutionTrace& trace_;
  /// Topological order of child types per parent type.
  std::vector<std::vector<PhaseTypeId>> child_type_order_;
};

}  // namespace g10::core
