// Folds one characterization result into a DetSummary (DESIGN.md §14).
//
// Every analysis product that reaches a report — the instance tree,
// attributed usage, bottleneck classifications, detected issues — is hashed
// under the phase path (or resource stream) it belongs to. The pipeline is
// bit-identical across thread counts by construction; `g10_analyze
// --det-check N` re-runs it at 1, 2 and N threads, compares the summaries,
// and names the first divergent phase path when that invariant breaks.
#pragma once

#include "common/det_hash.hpp"
#include "grade10/pipeline.hpp"

namespace g10::core {

/// Digest of a full characterization: per-instance timing and blocking,
/// per-resource attribution entries, bottleneck classifications, and issue
/// descriptions, all keyed so a divergence names the phase that caused it.
DetSummary fold_characterization(const CharacterizationResult& result,
                                 const ResourceModel& resources);

}  // namespace g10::core
