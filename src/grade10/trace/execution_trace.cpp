#include "grade10/trace/execution_trace.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace g10::core {

DurationNs PhaseInstance::blocked_time() const {
  DurationNs total = 0;
  for (const auto& interval : blocked) total += interval.length();
  return total;
}

std::vector<Interval> active_intervals(TimeNs begin, TimeNs end,
                                       std::vector<Interval> blocked) {
  std::vector<Interval> active;
  if (end <= begin) return active;
  std::sort(blocked.begin(), blocked.end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin;
            });
  TimeNs cursor = begin;
  for (const auto& b : blocked) {
    const TimeNs b_begin = std::max(b.begin, begin);
    const TimeNs b_end = std::min(b.end, end);
    if (b_end <= b_begin) continue;
    if (b_begin > cursor) active.push_back({cursor, b_begin});
    cursor = std::max(cursor, b_end);
  }
  if (cursor < end) active.push_back({cursor, end});
  return active;
}

ExecutionTrace ExecutionTrace::build(
    const ExecutionModel& model, const ResourceModel& resources,
    std::span<const trace::PhaseEventRecord> phase_events,
    std::span<const trace::BlockingEventRecord> blocking_events,
    const Options& options) {
  model.validate();
  ExecutionTrace trace;

  struct Pending {
    InstanceId id = kNoInstance;
    bool ended = false;
  };
  std::unordered_map<std::string, Pending> pending;

  for (const auto& event : phase_events) {
    const std::string key = event.path.to_string();
    if (event.kind == trace::PhaseEventRecord::Kind::Begin) {
      const PhaseTypeId type = model.find(event.path.leaf().type);
      if (type == kNoPhaseType) {
        G10_CHECK_MSG(options.ignore_unknown_phases,
                      "unknown phase type in log: " << event.path.leaf().type);
        continue;
      }
      G10_CHECK_MSG(!pending.contains(key), "duplicate phase begin: " << key);
      PhaseInstance instance;
      instance.id = static_cast<InstanceId>(trace.instances_.size());
      instance.type = type;
      instance.index = event.path.leaf().index;
      instance.begin = event.time;
      instance.end = -1;
      instance.machine = event.machine;
      instance.path = key;
      pending.emplace(key, Pending{instance.id, false});
      trace.by_path_.emplace(key, instance.id);
      trace.instances_.push_back(std::move(instance));
    } else {
      const auto it = pending.find(key);
      if (it == pending.end()) {
        G10_CHECK_MSG(options.ignore_unknown_phases,
                      "phase end without begin: " << key);
        continue;
      }
      G10_CHECK_MSG(!it->second.ended, "duplicate phase end: " << key);
      it->second.ended = true;
      auto& instance = trace.instances_[static_cast<std::size_t>(it->second.id)];
      G10_CHECK_MSG(event.time >= instance.begin,
                    "phase " << key << " ends before it begins");
      instance.end = event.time;
      trace.end_time_ = std::max(trace.end_time_, event.time);
    }
  }

  // Every instance must have ended.
  for (const auto& [key, state] : pending) {
    G10_CHECK_MSG(state.ended, "phase never ended: " << key);
  }

  // Resolve parents and verify model linkage + temporal containment.
  for (auto& instance : trace.instances_) {
    const PhaseType& type = model.type(instance.type);
    const auto slash = instance.path.rfind('/');
    if (slash == std::string::npos) {
      G10_CHECK_MSG(instance.type == model.root(),
                    "non-root type at top level: " << instance.path);
      instance.parent = kNoInstance;
      continue;
    }
    const std::string parent_path = instance.path.substr(0, slash);
    const auto it = trace.by_path_.find(parent_path);
    G10_CHECK_MSG(it != trace.by_path_.end(),
                  "parent instance missing for " << instance.path);
    instance.parent = it->second;
    auto& parent = trace.instances_[static_cast<std::size_t>(it->second)];
    G10_CHECK_MSG(type.parent == parent.type,
                  "instance " << instance.path
                              << " violates the model hierarchy");
    G10_CHECK_MSG(instance.begin >= parent.begin && instance.end <= parent.end,
                  "instance " << instance.path
                              << " escapes its parent's interval");
    parent.children.push_back(instance.id);
  }

  for (const auto& instance : trace.instances_) {
    if (instance.is_leaf()) trace.leaves_.push_back(instance.id);
    if (instance.machine != trace::kGlobalMachine &&
        std::find(trace.machines_.begin(), trace.machines_.end(),
                  instance.machine) == trace.machines_.end()) {
      trace.machines_.push_back(instance.machine);
    }
  }
  std::sort(trace.machines_.begin(), trace.machines_.end());

  // Attach blocking events.
  for (const auto& event : blocking_events) {
    const ResourceId resource = resources.find(event.resource);
    if (resource == kNoResource) {
      G10_CHECK_MSG(options.ignore_unknown_blocking,
                    "unknown blocking resource: " << event.resource);
      continue;
    }
    G10_CHECK_MSG(
        resources.resource(resource).kind == ResourceKind::kBlocking,
        "blocking event on consumable resource: " << event.resource);
    const std::string key = event.path.to_string();
    const auto it = trace.by_path_.find(key);
    if (it == trace.by_path_.end()) {
      G10_CHECK_MSG(options.ignore_unknown_phases,
                    "blocking event for unknown phase: " << key);
      continue;
    }
    auto& instance = trace.instances_[static_cast<std::size_t>(it->second)];
    G10_CHECK_MSG(event.begin >= instance.begin && event.end <= instance.end,
                  "blocking event escapes phase interval: " << key);
    instance.blocked.push_back({event.begin, event.end});
    trace.blocking_.push_back(
        BlockingSpan{resource, it->second, {event.begin, event.end}});
  }
  // Normalize blocked interval lists (sorted, merged).
  for (auto& instance : trace.instances_) {
    if (instance.blocked.empty()) continue;
    std::sort(instance.blocked.begin(), instance.blocked.end(),
              [](const Interval& a, const Interval& b) {
                return a.begin < b.begin;
              });
    std::vector<Interval> merged;
    for (const auto& interval : instance.blocked) {
      if (!merged.empty() && interval.begin <= merged.back().end) {
        merged.back().end = std::max(merged.back().end, interval.end);
      } else {
        merged.push_back(interval);
      }
    }
    instance.blocked = std::move(merged);
  }
  return trace;
}

const PhaseInstance& ExecutionTrace::instance(InstanceId id) const {
  G10_CHECK(id >= 0 && static_cast<std::size_t>(id) < instances_.size());
  return instances_[static_cast<std::size_t>(id)];
}

InstanceId ExecutionTrace::find(const std::string& path) const {
  const auto it = by_path_.find(path);
  return it == by_path_.end() ? kNoInstance : it->second;
}

}  // namespace g10::core
