#include "grade10/trace/execution_trace.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace g10::core {

DurationNs PhaseInstance::blocked_time() const {
  DurationNs total = 0;
  for (const auto& interval : blocked) total += interval.length();
  return total;
}

std::vector<Interval> active_intervals(TimeNs begin, TimeNs end,
                                       std::vector<Interval> blocked) {
  std::vector<Interval> active;
  if (end <= begin) return active;
  std::sort(blocked.begin(), blocked.end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin;
            });
  TimeNs cursor = begin;
  for (const auto& b : blocked) {
    const TimeNs b_begin = std::max(b.begin, begin);
    const TimeNs b_end = std::min(b.end, end);
    if (b_end <= b_begin) continue;
    if (b_begin > cursor) active.push_back({cursor, b_begin});
    cursor = std::max(cursor, b_end);
  }
  if (cursor < end) active.push_back({cursor, end});
  return active;
}

ExecutionTrace ExecutionTrace::build(
    const ExecutionModel& model, const ResourceModel& resources,
    std::span<const trace::PhaseEventRecord> phase_events,
    std::span<const trace::BlockingEventRecord> blocking_events,
    const Options& options) {
  model.validate();
  ExecutionTrace trace;
  const bool lenient = options.lenient;
  constexpr std::size_t kMaxWarnings = 24;
  std::size_t warning_overflow = 0;
  const auto warn = [&](std::string message) {
    if (trace.warnings_.size() < kMaxWarnings) {
      trace.warnings_.push_back(std::move(message));
    } else {
      ++warning_overflow;
    }
  };
  // Data damage is a hard error in strict mode and a warning in lenient
  // mode. Model violations never go through here — they always throw.
  const auto require_lenient = [lenient](const std::string& what) {
    if (!lenient) {
      throw CheckError("damaged trace: " + what +
                       " (lenient ingestion repairs this)");
    }
  };

  struct Pending {
    InstanceId id = kNoInstance;
    bool ended = false;
  };
  std::unordered_map<std::string, Pending, PathHash, std::equal_to<>> pending;

  // One render buffer reused across all events: END events (half the log)
  // only probe the maps and never need an owned key.
  std::string key;
  for (const auto& event : phase_events) {
    key.clear();
    event.path.append_to(key);
    if (event.kind == trace::PhaseEventRecord::Kind::Begin) {
      const PhaseTypeId type = model.find(event.path.leaf().type);
      if (type == kNoPhaseType) {
        if (options.ignore_unknown_phases) continue;
        require_lenient("unknown phase type in log: " + event.path.leaf().type);
        warn("skipped phase of unknown type: " + key);
        continue;
      }
      if (pending.contains(key)) {
        require_lenient("duplicate phase begin: " + key);
        warn("skipped duplicate begin: " + key);
        continue;
      }
      PhaseInstance instance;
      instance.id = static_cast<InstanceId>(trace.instances_.size());
      instance.type = type;
      instance.index = event.path.leaf().index;
      instance.begin = event.time;
      instance.end = -1;
      instance.machine = event.machine;
      instance.path = key;
      pending.emplace(key, Pending{instance.id, false});
      trace.by_path_.emplace(key, instance.id);
      trace.instances_.push_back(std::move(instance));
    } else {
      const auto it = pending.find(key);
      if (it == pending.end()) {
        if (options.ignore_unknown_phases) continue;
        require_lenient("phase end without begin: " + key);
        warn("skipped end without begin: " + key);
        continue;
      }
      if (it->second.ended) {
        require_lenient("duplicate phase end: " + key);
        warn("skipped duplicate end: " + key);
        continue;
      }
      auto& instance = trace.instances_[static_cast<std::size_t>(it->second.id)];
      if (event.time < instance.begin) {
        // Leave the instance open; the synthesis pass below repairs it.
        require_lenient("phase " + key + " ends before it begins");
        warn("skipped end before begin: " + key);
        continue;
      }
      it->second.ended = true;
      instance.end = event.time;
      trace.end_time_ = std::max(trace.end_time_, event.time);
    }
  }

  // Every instance must have ended — a BEGIN without an END is the signature
  // of a crashed worker's log. Lenient mode repairs it below. Walk the
  // instances in begin order (not `pending`, whose hash order would make the
  // strict-mode error message pick an arbitrary victim).
  std::vector<InstanceId> unended;
  for (const auto& instance : trace.instances_) {
    if (instance.end >= 0) continue;
    require_lenient("phase never ended: " + instance.path);
    unended.push_back(instance.id);
  }

  // Resolve parents and verify model linkage. Model violations stay hard
  // errors even in lenient mode: they mean the wrong model, not a damaged
  // log. Temporal containment is checked after end synthesis.
  for (auto& instance : trace.instances_) {
    const PhaseType& type = model.type(instance.type);
    const auto slash = instance.path.rfind('/');
    if (slash == std::string::npos) {
      G10_CHECK_MSG(instance.type == model.root(),
                    "non-root type at top level: " << instance.path);
      instance.parent = kNoInstance;
      continue;
    }
    const std::string_view parent_path =
        std::string_view(instance.path).substr(0, slash);
    const auto it = trace.by_path_.find(parent_path);
    G10_CHECK_MSG(it != trace.by_path_.end(),
                  "parent instance missing for " << instance.path);
    instance.parent = it->second;
    auto& parent = trace.instances_[static_cast<std::size_t>(it->second)];
    G10_CHECK_MSG(type.parent == parent.type,
                  "instance " << instance.path
                              << " violates the model hierarchy");
    parent.children.push_back(instance.id);
  }

  if (!unended.empty()) {
    // Synthesize closure for truncated phases. Bottom-up (deepest first):
    // an unended phase ends no earlier than anything recorded inside it —
    // its children's ends and its own blocking events — which pins the
    // deepest truncated subtree to the last time its worker was heard from
    // (the crash time). Top-down afterwards: a truncated child of a
    // truncated parent is stretched to the parent's synthesized end, so a
    // whole abandoned subtree closes at one consistent instant.
    std::unordered_map<std::string, TimeNs, PathHash, std::equal_to<>>
        block_max;
    for (const auto& event : blocking_events) {
      key.clear();
      event.path.append_to(key);
      const auto bit = block_max.find(key);
      if (bit == block_max.end()) {
        block_max.emplace(key, event.end);
      } else {
        bit->second = std::max(bit->second, event.end);
      }
    }
    const auto depth_of = [](const PhaseInstance& instance) {
      return std::count(instance.path.begin(), instance.path.end(), '/');
    };
    std::vector<InstanceId> by_depth = unended;
    std::sort(by_depth.begin(), by_depth.end(),
              [&](InstanceId a, InstanceId b) {
                const auto da = depth_of(trace.instances_[a]);
                const auto db = depth_of(trace.instances_[b]);
                return da != db ? da > db : a < b;
              });
    for (const InstanceId id : by_depth) {
      auto& instance = trace.instances_[static_cast<std::size_t>(id)];
      TimeNs end = instance.begin;
      for (const InstanceId child : instance.children) {
        const auto& c = trace.instances_[static_cast<std::size_t>(child)];
        if (c.end >= 0) end = std::max(end, c.end);
      }
      const auto bit = block_max.find(instance.path);
      if (bit != block_max.end()) end = std::max(end, bit->second);
      instance.end = end;
      instance.degraded = true;
    }
    std::reverse(by_depth.begin(), by_depth.end());  // now shallowest first
    for (const InstanceId id : by_depth) {
      auto& instance = trace.instances_[static_cast<std::size_t>(id)];
      if (instance.parent == kNoInstance) continue;
      const auto& parent =
          trace.instances_[static_cast<std::size_t>(instance.parent)];
      if (parent.degraded) {
        instance.end = std::max(instance.end, parent.end);
      } else {
        instance.end = std::max(instance.begin,
                                std::min(instance.end, parent.end));
      }
    }
    for (const InstanceId id : unended) {
      auto& instance = trace.instances_[static_cast<std::size_t>(id)];
      trace.end_time_ = std::max(trace.end_time_, instance.end);
      warn("phase never ended; synthesized closure at " +
           std::to_string(instance.end) + " ns: " + instance.path);
    }
  }

  // Temporal containment: a child must run inside its parent.
  for (auto& instance : trace.instances_) {
    if (instance.parent == kNoInstance) continue;
    const auto& parent =
        trace.instances_[static_cast<std::size_t>(instance.parent)];
    if (instance.begin >= parent.begin && instance.end <= parent.end) continue;
    require_lenient("instance " + instance.path +
                    " escapes its parent's interval");
    warn("clamped " + instance.path + " into its parent's interval");
    instance.begin = std::max(instance.begin, parent.begin);
    instance.end = std::min(instance.end, parent.end);
    if (instance.end < instance.begin) instance.end = instance.begin;
    instance.degraded = true;
  }

  for (const auto& instance : trace.instances_) {
    if (instance.is_leaf()) trace.leaves_.push_back(instance.id);
    if (instance.machine != trace::kGlobalMachine &&
        std::find(trace.machines_.begin(), trace.machines_.end(),
                  instance.machine) == trace.machines_.end()) {
      trace.machines_.push_back(instance.machine);
    }
  }
  std::sort(trace.machines_.begin(), trace.machines_.end());

  // Attach blocking events.
  for (const auto& event : blocking_events) {
    const ResourceId resource = resources.find(event.resource);
    key.clear();
    event.path.append_to(key);
    if (resource == kNoResource) {
      if (options.ignore_unknown_blocking) continue;
      require_lenient("unknown blocking resource: " + event.resource);
      warn("skipped blocking event on unknown resource: " + event.resource);
      continue;
    }
    if (resources.resource(resource).kind != ResourceKind::kBlocking) {
      require_lenient("blocking event on consumable resource: " +
                      event.resource);
      warn("skipped blocking event on consumable resource: " +
           event.resource);
      continue;
    }
    const auto it = trace.by_path_.find(key);
    if (it == trace.by_path_.end()) {
      if (options.ignore_unknown_phases) continue;
      require_lenient("blocking event for unknown phase: " + key);
      warn("skipped blocking event for unknown phase: " + key);
      continue;
    }
    auto& instance = trace.instances_[static_cast<std::size_t>(it->second)];
    Interval interval{event.begin, event.end};
    if (interval.begin < instance.begin || interval.end > instance.end) {
      require_lenient("blocking event escapes phase interval: " + key);
      interval.begin = std::max(interval.begin, instance.begin);
      interval.end = std::min(interval.end, instance.end);
      if (interval.empty()) {
        warn("dropped blocking event outside phase interval: " + key);
        continue;
      }
      warn("clamped blocking event into phase interval: " + key);
    }
    instance.blocked.push_back(interval);
    trace.blocking_.push_back(BlockingSpan{resource, it->second, interval});
  }
  if (warning_overflow > 0) {
    trace.warnings_.push_back("(+" + std::to_string(warning_overflow) +
                              " more warnings suppressed)");
  }
  // Normalize blocked interval lists (sorted, merged).
  for (auto& instance : trace.instances_) {
    if (instance.blocked.empty()) continue;
    std::sort(instance.blocked.begin(), instance.blocked.end(),
              [](const Interval& a, const Interval& b) {
                return a.begin < b.begin;
              });
    std::vector<Interval> merged;
    for (const auto& interval : instance.blocked) {
      if (!merged.empty() && interval.begin <= merged.back().end) {
        merged.back().end = std::max(merged.back().end, interval.end);
      } else {
        merged.push_back(interval);
      }
    }
    instance.blocked = std::move(merged);
  }
  return trace;
}

const PhaseInstance& ExecutionTrace::instance(InstanceId id) const {
  G10_CHECK(id >= 0 && static_cast<std::size_t>(id) < instances_.size());
  return instances_[static_cast<std::size_t>(id)];
}

InstanceId ExecutionTrace::find(std::string_view path) const {
  const auto it = by_path_.find(path);
  return it == by_path_.end() ? kNoInstance : it->second;
}

std::size_t ExecutionTrace::degraded_count() const {
  return static_cast<std::size_t>(
      std::count_if(instances_.begin(), instances_.end(),
                    [](const PhaseInstance& i) { return i.degraded; }));
}

}  // namespace g10::core
