// Resource trace (paper §III-C): per-resource, per-machine sequences of
// coarse monitoring measurements. Each measurement is the average
// consumption rate over its window; windows tile the run.
#pragma once

#include <span>
#include <vector>

#include "common/time.hpp"
#include "grade10/model/resource_model.hpp"
#include "trace/records.hpp"

namespace g10::core {

struct Measurement {
  TimeNs begin = 0;
  TimeNs end = 0;
  double value = 0.0;  ///< average rate over [begin, end), resource units
};

struct ResourceSeries {
  ResourceId resource = kNoResource;
  trace::MachineId machine = trace::kGlobalMachine;
  std::vector<Measurement> measurements;  ///< sorted, non-overlapping
};

class ResourceTrace {
 public:
  struct Options {
    /// Drop samples whose resource is not in the model.
    bool ignore_unknown_resources = false;
  };

  /// Groups samples by (resource, machine) and derives each measurement's
  /// window start from the previous sample (the first starts at 0).
  static ResourceTrace build(
      const ResourceModel& model,
      std::span<const trace::MonitoringSampleRecord> samples,
      const Options& options);

  /// Convenience overload with default options.
  static ResourceTrace build(
      const ResourceModel& model,
      std::span<const trace::MonitoringSampleRecord> samples) {
    return build(model, samples, Options{});
  }

  const std::vector<ResourceSeries>& series() const { return series_; }
  const ResourceSeries* find(ResourceId resource,
                             trace::MachineId machine) const;

 private:
  std::vector<ResourceSeries> series_;
};

}  // namespace g10::core
