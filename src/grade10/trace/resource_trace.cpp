#include "grade10/trace/resource_trace.hpp"

#include <algorithm>
#include <map>

#include "common/check.hpp"

namespace g10::core {

ResourceTrace ResourceTrace::build(
    const ResourceModel& model,
    std::span<const trace::MonitoringSampleRecord> samples,
    const Options& options) {
  std::map<std::pair<ResourceId, trace::MachineId>,
           std::vector<const trace::MonitoringSampleRecord*>>
      groups;
  for (const auto& sample : samples) {
    const ResourceId resource = model.find(sample.resource);
    if (resource == kNoResource) {
      G10_CHECK_MSG(options.ignore_unknown_resources,
                    "unknown monitored resource: " << sample.resource);
      continue;
    }
    G10_CHECK_MSG(
        model.resource(resource).kind == ResourceKind::kConsumable,
        "monitoring sample for blocking resource: " << sample.resource);
    groups[{resource, sample.machine}].push_back(&sample);
  }

  ResourceTrace trace;
  for (auto& [key, recs] : groups) {
    std::sort(recs.begin(), recs.end(),
              [](const auto* a, const auto* b) { return a->time < b->time; });
    ResourceSeries series;
    series.resource = key.first;
    series.machine = key.second;
    TimeNs previous = 0;
    for (const auto* rec : recs) {
      G10_CHECK_MSG(rec->time > previous,
                    "duplicate monitoring sample time for " << rec->resource);
      series.measurements.push_back(Measurement{previous, rec->time, rec->value});
      previous = rec->time;
    }
    trace.series_.push_back(std::move(series));
  }
  return trace;
}

const ResourceSeries* ResourceTrace::find(ResourceId resource,
                                          trace::MachineId machine) const {
  for (const auto& series : series_) {
    if (series.resource == resource && series.machine == machine) {
      return &series;
    }
  }
  return nullptr;
}

}  // namespace g10::core
