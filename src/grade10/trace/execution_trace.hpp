// Execution trace (paper §III-C): the tree of phase *instances* of one
// workload run, assembled from the SUT's phase-event log and validated
// against the execution model, with blocking events attached.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "grade10/model/execution_model.hpp"
#include "grade10/model/resource_model.hpp"
#include "trace/records.hpp"

namespace g10::core {

using InstanceId = std::int32_t;
inline constexpr InstanceId kNoInstance = -1;

struct PhaseInstance {
  InstanceId id = kNoInstance;
  PhaseTypeId type = kNoPhaseType;
  InstanceId parent = kNoInstance;
  std::int64_t index = 0;  ///< instance index among same-type siblings
  TimeNs begin = 0;
  TimeNs end = 0;
  trace::MachineId machine = trace::kGlobalMachine;
  /// True when lenient mode repaired this instance (synthesized a missing
  /// end, clamped an escaping interval): its timing is an estimate.
  bool degraded = false;
  std::string path;  ///< canonical path string
  std::vector<InstanceId> children;
  /// Merged intervals during which the phase was blocked (any resource).
  std::vector<Interval> blocked;

  bool is_leaf() const { return children.empty(); }
  DurationNs duration() const { return end - begin; }
  DurationNs blocked_time() const;
};

/// One blocking event resolved against the model and the instance tree.
struct BlockingSpan {
  ResourceId resource = kNoResource;
  InstanceId instance = kNoInstance;
  Interval interval;
};

class ExecutionTrace {
 public:
  struct Options {
    /// Drop blocking events whose resource is not in the resource model
    /// (used to analyze a run against an untuned model, Table II).
    bool ignore_unknown_blocking = false;
    /// Drop phase instances whose type is not in the execution model
    /// (an untuned model may not describe e.g. GcPause phases).
    bool ignore_unknown_phases = false;
    /// Graceful degradation for damaged logs (crashed workers): instead of
    /// throwing, repair what can be repaired and record a warning. A phase
    /// with a BEGIN but no END (a crashed worker's log just stops) gets a
    /// synthesized end — the latest recorded time in its subtree, i.e. the
    /// crash time — and is flagged `degraded`; duplicate/orphaned events
    /// and escaping intervals are skipped or clamped. Violations of the
    /// model itself (unknown hierarchy linkage) remain hard errors: those
    /// mean the wrong model was supplied, not a damaged log.
    bool lenient = false;
  };

  /// Builds and validates the instance tree. Throws CheckError on
  /// structural problems (unbalanced events, unknown types, child escaping
  /// its parent's interval) unless Options::lenient repairs them.
  static ExecutionTrace build(
      const ExecutionModel& model, const ResourceModel& resources,
      std::span<const trace::PhaseEventRecord> phase_events,
      std::span<const trace::BlockingEventRecord> blocking_events,
      const Options& options);

  /// Convenience overload with default options.
  static ExecutionTrace build(
      const ExecutionModel& model, const ResourceModel& resources,
      std::span<const trace::PhaseEventRecord> phase_events,
      std::span<const trace::BlockingEventRecord> blocking_events) {
    return build(model, resources, phase_events, blocking_events, Options{});
  }

  const std::vector<PhaseInstance>& instances() const { return instances_; }
  const PhaseInstance& instance(InstanceId id) const;
  const std::vector<InstanceId>& leaves() const { return leaves_; }
  const std::vector<BlockingSpan>& blocking() const { return blocking_; }

  InstanceId root() const { return instances_.empty() ? kNoInstance : 0; }

  /// Heterogeneous lookup: accepts string literals, std::string, and
  /// string_view slices without materializing a temporary key.
  InstanceId find(std::string_view path) const;

  /// Latest phase end in the trace.
  TimeNs end_time() const { return end_time_; }

  /// All machine ids that appear on instances (excluding global).
  const std::vector<trace::MachineId>& machines() const { return machines_; }

  /// Human-readable notes about repairs performed in lenient mode (capped;
  /// a final entry summarizes any overflow). Empty for a clean trace.
  const std::vector<std::string>& warnings() const { return warnings_; }

  /// Number of instances flagged `degraded` by lenient repairs.
  std::size_t degraded_count() const;

 private:
  /// Transparent hash so path lookups take string_view keys (substrings of
  /// instance paths, reused render buffers) without allocating.
  struct PathHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::vector<PhaseInstance> instances_;
  std::vector<InstanceId> leaves_;
  std::vector<BlockingSpan> blocking_;
  std::unordered_map<std::string, InstanceId, PathHash, std::equal_to<>>
      by_path_;
  std::vector<trace::MachineId> machines_;
  std::vector<std::string> warnings_;
  TimeNs end_time_ = 0;
};

/// Subtracts `blocked` intervals from [begin, end), returning the active
/// sub-intervals in order. Blocked intervals must be within [begin, end)
/// (clipped otherwise) but may touch; overlapping ones are merged.
std::vector<Interval> active_intervals(TimeNs begin, TimeNs end,
                                       std::vector<Interval> blocked);

}  // namespace g10::core
