#include "grade10/models/pregel_model.hpp"

namespace g10::core {

FrameworkModel make_pregel_model(const PregelModelParams& params) {
  FrameworkModel m;

  // --- execution model -------------------------------------------------------
  auto& x = m.execution;
  const PhaseTypeId job = x.add_root("Job");
  const PhaseTypeId load = x.add_child(job, "LoadGraph");
  x.add_child(load, "LoadWorker");
  const PhaseTypeId execute = x.add_child(job, "Execute");
  const PhaseTypeId superstep = x.add_child(execute, "Superstep",
                                            /*repeated=*/true);
  const PhaseTypeId prepare = x.add_child(superstep, "WorkerPrepare");
  const PhaseTypeId compute = x.add_child(superstep, "WorkerCompute");
  const PhaseTypeId thread = x.add_child(compute, "ComputeThread");
  const PhaseTypeId communicate = x.add_child(superstep, "WorkerCommunicate");
  const PhaseTypeId barrier = x.add_child(superstep, "WorkerBarrier");
  const PhaseTypeId gc_pause = x.add_child(superstep, "GcPause");
  // Fault-tolerance phases (only present in logs from faulted runs).
  // Checkpoints and recoveries interleave with supersteps; all are modeled
  // as wait phases so the replay simulator treats them as overhead that a
  // fault-free run would not pay — their cost is carried by the Recovery /
  // Retry blocking events and reported as the fault-recovery issue.
  const PhaseTypeId checkpoint = x.add_child(execute, "Checkpoint",
                                             /*repeated=*/true);
  const PhaseTypeId checkpoint_worker = x.add_child(checkpoint,
                                                    "CheckpointWorker");
  const PhaseTypeId recovery = x.add_child(execute, "Recovery",
                                           /*repeated=*/true);
  const PhaseTypeId recovery_worker = x.add_child(recovery, "RecoveryWorker");
  const PhaseTypeId store = x.add_child(job, "StoreResults");
  const PhaseTypeId store_worker = x.add_child(store, "StoreWorker");
  x.add_order(load, execute);
  x.add_order(execute, store);
  x.add_order(prepare, compute);
  x.add_order(prepare, communicate);
  x.add_order(compute, barrier);
  x.set_wait(barrier);
  // WorkerCommunicate overlaps compute and mostly tracks it (sends are
  // produced by the compute threads); its recorded span is derivative,
  // so the replay simulator treats it as slack. Network pressure on the
  // compute path is represented by the MessageQueue blocking events.
  x.set_wait(communicate);
  // A GC pause's cost is fully accounted as blocked time on the compute
  // threads; the GcPause phase itself is an annotation for attribution.
  x.set_wait(gc_pause);
  x.set_wait(checkpoint);
  x.set_wait(checkpoint_worker);
  x.set_wait(recovery);
  x.set_wait(recovery_worker);
  x.set_concurrency_limit(thread, params.threads);
  x.validate();

  // --- resource model --------------------------------------------------------
  m.cpu = m.resources.add_consumable("cpu", static_cast<double>(params.cores));
  m.network = m.resources.add_consumable("network", params.network_capacity);
  m.gc = m.resources.add_blocking("GC");
  m.message_queue = m.resources.add_blocking("MessageQueue");
  m.recovery = m.resources.add_blocking("Recovery");
  m.retry = m.resources.add_blocking("Retry");

  // --- attribution rules ------------------------------------------------------
  // Untuned: the implicit Variable(1x) rule for every pair (paper §IV-B).
  // Tuned: the comprehensive rules an expert writes after studying the
  // framework — notably "an active compute thread is expected to always use
  // precisely one CPU core" and GC pauses burning every core.
  auto& rules = m.tuned_rules;
  const auto cores = static_cast<double>(params.cores);
  rules.set(thread, m.cpu, AttributionRule::exact(1.0));
  rules.set(thread, m.network, AttributionRule::none());
  rules.set(prepare, m.cpu, AttributionRule::exact(1.0));
  rules.set(prepare, m.network, AttributionRule::none());
  rules.set(communicate, m.cpu, AttributionRule::none());
  rules.set(communicate, m.network, AttributionRule::variable(1.0));
  rules.set(barrier, m.cpu, AttributionRule::none());
  rules.set(barrier, m.network, AttributionRule::none());
  rules.set(gc_pause, m.cpu, AttributionRule::exact(cores));
  rules.set(gc_pause, m.network, AttributionRule::none());
  // A checkpoint writer burns one core per worker; a recovering worker is
  // reloading state, not computing.
  rules.set(checkpoint_worker, m.cpu, AttributionRule::exact(1.0));
  rules.set(checkpoint_worker, m.network, AttributionRule::none());
  rules.set(recovery_worker, m.cpu, AttributionRule::none());
  rules.set(recovery_worker, m.network, AttributionRule::none());
  const PhaseTypeId load_worker = x.find("LoadWorker");
  rules.set(load_worker, m.cpu, AttributionRule::exact(cores));
  rules.set(load_worker, m.network, AttributionRule::variable(1.0));
  rules.set(store_worker, m.cpu, AttributionRule::exact(cores));
  rules.set(store_worker, m.network, AttributionRule::none());
  return m;
}

}  // namespace g10::core
