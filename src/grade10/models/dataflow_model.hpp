// Expert model for the Spark-like dataflow engine — the §V demonstration
// that Grade10's machinery generalizes beyond graph processing: the same
// model/attribution/issue pipeline characterizes a stage/task dataflow.
#pragma once

#include "grade10/models/pregel_model.hpp"  // FrameworkModel

namespace g10::core {

struct DataflowModelParams {
  int cores = 8;
  int machines = 4;
  int slots = 8;  ///< executor slots per machine
  double network_capacity = 1.25e8;
};

/// Phase-type names match engine/dataflow's log output.
FrameworkModel make_dataflow_model(const DataflowModelParams& params);

}  // namespace g10::core
