#include "grade10/models/gas_model.hpp"

namespace g10::core {

FrameworkModel make_gas_model(const GasModelParams& params) {
  FrameworkModel m;

  auto& x = m.execution;
  const PhaseTypeId job = x.add_root("Job");
  const PhaseTypeId load = x.add_child(job, "LoadGraph");
  const PhaseTypeId load_worker = x.add_child(load, "LoadWorker");
  const PhaseTypeId execute = x.add_child(job, "Execute");
  const PhaseTypeId iteration =
      x.add_child(execute, "Iteration", /*repeated=*/true);
  const PhaseTypeId gather_step = x.add_child(iteration, "GatherStep");
  const PhaseTypeId worker_gather = x.add_child(gather_step, "WorkerGather");
  const PhaseTypeId gather_thread =
      x.add_child(worker_gather, "GatherThread");
  const PhaseTypeId apply_step = x.add_child(iteration, "ApplyStep");
  const PhaseTypeId worker_apply = x.add_child(apply_step, "WorkerApply");
  const PhaseTypeId apply_thread = x.add_child(worker_apply, "ApplyThread");
  const PhaseTypeId scatter_step = x.add_child(iteration, "ScatterStep");
  const PhaseTypeId worker_scatter =
      x.add_child(scatter_step, "WorkerScatter");
  const PhaseTypeId scatter_thread =
      x.add_child(worker_scatter, "ScatterThread");
  const PhaseTypeId exchange_step = x.add_child(iteration, "ExchangeStep");
  const PhaseTypeId worker_exchange =
      x.add_child(exchange_step, "WorkerExchange");
  // Fault-tolerance phases (only present in logs from faulted runs); they
  // mirror the Pregel model: wait phases whose cost is carried by the
  // Recovery / Retry blocking events and surfaced as the fault-recovery
  // issue rather than attributed as useful work.
  const PhaseTypeId checkpoint = x.add_child(execute, "Checkpoint",
                                             /*repeated=*/true);
  const PhaseTypeId checkpoint_worker = x.add_child(checkpoint,
                                                    "CheckpointWorker");
  const PhaseTypeId recovery = x.add_child(execute, "Recovery",
                                           /*repeated=*/true);
  const PhaseTypeId recovery_worker = x.add_child(recovery, "RecoveryWorker");
  const PhaseTypeId store = x.add_child(job, "StoreResults");
  const PhaseTypeId store_worker = x.add_child(store, "StoreWorker");
  x.add_order(load, execute);
  x.add_order(execute, store);
  x.add_order(gather_step, apply_step);
  x.add_order(apply_step, scatter_step);
  x.add_order(scatter_step, exchange_step);
  x.set_wait(checkpoint);
  x.set_wait(checkpoint_worker);
  x.set_wait(recovery);
  x.set_wait(recovery_worker);
  x.set_concurrency_limit(gather_thread, params.threads);
  x.set_concurrency_limit(apply_thread, params.threads);
  x.set_concurrency_limit(scatter_thread, params.threads);
  x.validate();

  m.cpu = m.resources.add_consumable("cpu", static_cast<double>(params.cores));
  m.network = m.resources.add_consumable("network", params.network_capacity);
  m.recovery = m.resources.add_blocking("Recovery");
  m.retry = m.resources.add_blocking("Retry");

  auto& rules = m.tuned_rules;
  const auto cores = static_cast<double>(params.cores);
  for (const PhaseTypeId t : {gather_thread, apply_thread, scatter_thread}) {
    rules.set(t, m.cpu, AttributionRule::exact(1.0));
    rules.set(t, m.network, AttributionRule::none());
  }
  rules.set(worker_exchange, m.cpu, AttributionRule::exact(1.0));
  rules.set(worker_exchange, m.network, AttributionRule::variable(1.0));
  rules.set(load_worker, m.cpu, AttributionRule::exact(cores));
  rules.set(load_worker, m.network, AttributionRule::variable(1.0));
  rules.set(store_worker, m.cpu, AttributionRule::exact(cores));
  rules.set(store_worker, m.network, AttributionRule::none());
  // A checkpoint writer burns one core per worker; a recovering worker is
  // reloading state, not computing.
  rules.set(checkpoint_worker, m.cpu, AttributionRule::exact(1.0));
  rules.set(checkpoint_worker, m.network, AttributionRule::none());
  rules.set(recovery_worker, m.cpu, AttributionRule::none());
  rules.set(recovery_worker, m.network, AttributionRule::none());
  return m;
}

}  // namespace g10::core
