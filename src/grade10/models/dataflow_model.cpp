#include "grade10/models/dataflow_model.hpp"

namespace g10::core {

FrameworkModel make_dataflow_model(const DataflowModelParams& params) {
  FrameworkModel m;
  auto& x = m.execution;
  const PhaseTypeId job = x.add_root("Job");
  const PhaseTypeId stage = x.add_child(job, "Stage", /*repeated=*/true);
  const PhaseTypeId task = x.add_child(stage, "Task");
  const PhaseTypeId shuffle = x.add_child(stage, "ShuffleWrite");
  // The replay simulator models the executor pool as a concurrency limit
  // over the whole cluster's slots (tasks are machine-pinned in the trace,
  // but Spark-style scheduling is work-stealing across the pool).
  x.set_concurrency_limit(task, params.machines * params.slots);
  // Shuffle output overlaps the stage's compute and tracks it; its span is
  // derivative (same reasoning as Giraph's WorkerCommunicate).
  x.set_wait(shuffle);
  x.validate();

  m.cpu = m.resources.add_consumable("cpu", static_cast<double>(params.cores));
  m.network = m.resources.add_consumable("network", params.network_capacity);

  auto& rules = m.tuned_rules;
  rules.set(task, m.cpu, AttributionRule::exact(1.0));
  rules.set(task, m.network, AttributionRule::none());
  rules.set(shuffle, m.cpu, AttributionRule::none());
  rules.set(shuffle, m.network, AttributionRule::variable(1.0));
  return m;
}

}  // namespace g10::core
