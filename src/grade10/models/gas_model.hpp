// Expert models for the GAS-style (PowerGraph stand-in) engine. The paper
// describes its PowerGraph model as "comprehensive and tuned" (§IV-B),
// which is why its upsampling accuracy is the best of the three variants.
// PowerGraph, being native C++, has no GC and no explicit queue stalls; its
// only blocking resources are the fault-handling pair shared with the
// Pregel model ("Retry" retransmit backoff, "Recovery" snapshot-restart
// downtime), which appear solely under fault injection.
#pragma once

#include "grade10/models/pregel_model.hpp"  // FrameworkModel

namespace g10::core {

struct GasModelParams {
  int cores = 8;
  int threads = 8;
  double network_capacity = 1.25e8;  ///< NIC bytes/s
};

/// Phase-type names match engine/gas's log output.
FrameworkModel make_gas_model(const GasModelParams& params);

}  // namespace g10::core
