// Expert models for the Pregel-style (Giraph stand-in) engine: the
// execution model, resource model, and attribution rule sets that the paper
// says a domain expert writes once per framework (§III-B, §V). Two rule
// variants are provided — `tuned` (Exact rules for compute threads and GC,
// the §IV-B "comprehensive attribution rules") and `untuned` (the implicit
// Variable(1x) default only).
#pragma once

#include "grade10/model/attribution_rules.hpp"
#include "grade10/model/execution_model.hpp"
#include "grade10/model/resource_model.hpp"

namespace g10::core {

struct FrameworkModel {
  ExecutionModel execution;
  ResourceModel resources;
  AttributionRuleSet tuned_rules;
  AttributionRuleSet untuned_rules;

  ResourceId cpu = kNoResource;
  ResourceId network = kNoResource;
  ResourceId gc = kNoResource;             ///< Pregel only
  ResourceId message_queue = kNoResource;  ///< Pregel only
  ResourceId recovery = kNoResource;       ///< fault handling (both engines)
  ResourceId retry = kNoResource;          ///< fault handling (both engines)
};

struct PregelModelParams {
  int cores = 8;
  int threads = 8;                 ///< compute threads per worker
  double network_capacity = 1.25e8;  ///< NIC bytes/s
};

/// Phase-type names match engine/pregel's log output.
FrameworkModel make_pregel_model(const PregelModelParams& params);

}  // namespace g10::core
