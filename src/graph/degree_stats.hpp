// Degree-distribution diagnostics, used by tests (generator sanity) and by
// the experiment harnesses to report dataset properties.
#pragma once

#include "graph/graph.hpp"

namespace g10::graph {

struct DegreeStats {
  EdgeIndex min_out = 0;
  EdgeIndex max_out = 0;
  double mean_out = 0.0;
  double p50_out = 0.0;
  double p99_out = 0.0;
  /// Gini coefficient of the out-degree distribution in [0, 1];
  /// 0 = perfectly uniform, ->1 = extremely skewed.
  double gini = 0.0;
  VertexId isolated_vertices = 0;
};

DegreeStats compute_degree_stats(const Graph& graph);

}  // namespace g10::graph
