#include "graph/degree_stats.hpp"

#include <algorithm>
#include <vector>

#include "common/stats.hpp"

namespace g10::graph {

DegreeStats compute_degree_stats(const Graph& graph) {
  DegreeStats stats;
  const VertexId n = graph.vertex_count();
  if (n == 0) return stats;

  std::vector<double> degrees(n);
  stats.min_out = graph.out_degree(0);
  for (VertexId v = 0; v < n; ++v) {
    const EdgeIndex d = graph.out_degree(v);
    degrees[v] = static_cast<double>(d);
    stats.min_out = std::min(stats.min_out, d);
    stats.max_out = std::max(stats.max_out, d);
    if (d == 0) ++stats.isolated_vertices;
  }
  stats.mean_out =
      static_cast<double>(graph.edge_count()) / static_cast<double>(n);
  stats.p50_out = percentile(degrees, 0.5);
  stats.p99_out = percentile(degrees, 0.99);

  // Gini via the sorted-rank formula: G = (2*sum(i*x_i)/(n*sum x)) - (n+1)/n.
  std::sort(degrees.begin(), degrees.end());
  double weighted = 0.0;
  double total = 0.0;
  for (VertexId i = 0; i < n; ++i) {
    weighted += static_cast<double>(i + 1) * degrees[i];
    total += degrees[i];
  }
  if (total > 0.0) {
    const double nd = static_cast<double>(n);
    stats.gini = (2.0 * weighted) / (nd * total) - (nd + 1.0) / nd;
  }
  return stats;
}

}  // namespace g10::graph
