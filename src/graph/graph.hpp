// Compressed-sparse-row graph storage.
//
// Both simulated engines and the reference algorithm implementations operate
// on this structure. Graphs are stored directed; undirected datasets are
// symmetrized at build time. Optional in-edge (reverse CSR) indexes are built
// lazily because only some algorithms (e.g. pull-based PageRank, GAS gather
// over in-edges) need them.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace g10::graph {

using VertexId = std::uint32_t;
using EdgeIndex = std::uint64_t;

/// Immutable CSR graph. Construct via GraphBuilder.
class Graph {
 public:
  Graph() = default;

  /// Takes ownership of validated CSR arrays. offsets.size() == n + 1,
  /// offsets.front() == 0, offsets.back() == targets.size(), rows sorted.
  Graph(std::vector<EdgeIndex> out_offsets, std::vector<VertexId> out_targets,
        bool undirected, std::string name);

  /// Attaches per-edge weights (indexed by global edge id / CSR position).
  /// Must match edge_count(). Unweighted graphs report weight 1 everywhere.
  void set_weights(std::vector<double> weights);
  bool weighted() const { return !weights_.empty(); }
  double edge_weight(EdgeIndex id) const {
    return weights_.empty() ? 1.0 : weights_[id];
  }
  /// Weights aligned with out_neighbors(v); empty span when unweighted.
  std::span<const double> out_weights(VertexId v) const {
    if (weights_.empty()) return {};
    return {weights_.data() + out_offsets_[v],
            weights_.data() + out_offsets_[v + 1]};
  }
  /// Weight of the in-edge aligned with in_neighbors(v)[i].
  double in_weight(VertexId v, EdgeIndex i) const;

  VertexId vertex_count() const {
    return out_offsets_.empty()
               ? 0
               : static_cast<VertexId>(out_offsets_.size() - 1);
  }
  EdgeIndex edge_count() const { return out_targets_.size(); }
  bool undirected() const { return undirected_; }
  const std::string& name() const { return name_; }

  /// Out-neighbors of v, sorted ascending.
  std::span<const VertexId> out_neighbors(VertexId v) const {
    return {out_targets_.data() + out_offsets_[v],
            out_targets_.data() + out_offsets_[v + 1]};
  }
  EdgeIndex out_degree(VertexId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }

  /// In-neighbors of v; builds the reverse index on first use.
  std::span<const VertexId> in_neighbors(VertexId v) const;
  EdgeIndex in_degree(VertexId v) const;

  /// Global edge ids aligned with in_neighbors(v): in_edge_ids(v)[i] is the
  /// CSR id of the edge (in_neighbors(v)[i], v). Lets callers batch-resolve
  /// in-edge weights and edge ownership without per-edge in_weight() calls.
  std::span<const EdgeIndex> in_edge_ids(VertexId v) const;

  /// Global edge id of the e-th out-edge of v (CSR position).
  EdgeIndex edge_id(VertexId v, EdgeIndex e_local) const {
    return out_offsets_[v] + e_local;
  }

  /// True if the directed edge (u, v) exists (binary search).
  bool has_edge(VertexId u, VertexId v) const;

  const std::vector<EdgeIndex>& out_offsets() const { return out_offsets_; }
  const std::vector<VertexId>& out_targets() const { return out_targets_; }

 private:
  void ensure_in_index() const;

  std::vector<EdgeIndex> out_offsets_;
  std::vector<VertexId> out_targets_;
  std::vector<double> weights_;  ///< empty = unweighted
  bool undirected_ = false;
  std::string name_;

  // Reverse CSR, built lazily (logically const: derived data).
  mutable std::vector<EdgeIndex> in_offsets_;
  mutable std::vector<VertexId> in_sources_;
  mutable std::vector<EdgeIndex> in_edge_ids_;  ///< original edge id
  mutable bool in_built_ = false;
};

}  // namespace g10::graph
