#include "graph/partition.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace g10::graph {

std::vector<VertexId> EdgeCutPartition::vertex_counts() const {
  std::vector<VertexId> counts(partition_count, 0);
  for (PartitionId p : owner) ++counts[p];
  return counts;
}

std::vector<EdgeIndex> EdgeCutPartition::edge_counts(
    const Graph& graph) const {
  std::vector<EdgeIndex> counts(partition_count, 0);
  for (VertexId v = 0; v < graph.vertex_count(); ++v) {
    counts[owner[v]] += graph.out_degree(v);
  }
  return counts;
}

double EdgeCutPartition::cut_fraction(const Graph& graph) const {
  if (graph.edge_count() == 0) return 0.0;
  EdgeIndex cut = 0;
  for (VertexId v = 0; v < graph.vertex_count(); ++v) {
    for (VertexId t : graph.out_neighbors(v)) {
      if (owner[v] != owner[t]) ++cut;
    }
  }
  return static_cast<double>(cut) / static_cast<double>(graph.edge_count());
}

EdgeCutPartition partition_by_hash(const Graph& graph, PartitionId parts) {
  G10_CHECK(parts > 0);
  EdgeCutPartition result;
  result.partition_count = parts;
  result.owner.resize(graph.vertex_count());
  for (VertexId v = 0; v < graph.vertex_count(); ++v) {
    // Multiplicative hash avoids correlating with generator id patterns.
    const std::uint64_t h = (static_cast<std::uint64_t>(v) + 1) *
                            0x9E3779B97F4A7C15ULL;
    result.owner[v] = static_cast<PartitionId>((h >> 32) % parts);
  }
  return result;
}

EdgeCutPartition partition_by_range(const Graph& graph, PartitionId parts) {
  G10_CHECK(parts > 0);
  EdgeCutPartition result;
  result.partition_count = parts;
  result.owner.resize(graph.vertex_count());
  const auto n = static_cast<std::uint64_t>(graph.vertex_count());
  for (VertexId v = 0; v < graph.vertex_count(); ++v) {
    result.owner[v] =
        static_cast<PartitionId>(static_cast<std::uint64_t>(v) * parts / n);
  }
  return result;
}

EdgeCutPartition partition_by_edge_balance(const Graph& graph,
                                           PartitionId parts) {
  G10_CHECK(parts > 0);
  EdgeCutPartition result;
  result.partition_count = parts;
  result.owner.resize(graph.vertex_count());
  const double per_part =
      static_cast<double>(graph.edge_count()) / static_cast<double>(parts);
  EdgeIndex seen = 0;
  PartitionId current = 0;
  for (VertexId v = 0; v < graph.vertex_count(); ++v) {
    if (current + 1 < parts &&
        static_cast<double>(seen) >= per_part * (current + 1)) {
      ++current;
    }
    result.owner[v] = current;
    seen += graph.out_degree(v);
  }
  return result;
}

std::vector<EdgeIndex> VertexCutPartition::edge_counts() const {
  std::vector<EdgeIndex> counts(partition_count, 0);
  for (PartitionId p : edge_owner) ++counts[p];
  return counts;
}

double VertexCutPartition::replication_factor() const {
  if (replicas.empty()) return 0.0;
  std::size_t total = 0;
  std::size_t present = 0;
  for (const auto& r : replicas) {
    total += r.size();
    if (!r.empty()) ++present;
  }
  return present == 0 ? 0.0
                      : static_cast<double>(total) /
                            static_cast<double>(present);
}

namespace {

/// Shared finalization: derive per-vertex replica sets and masters from an
/// edge assignment. The master is the replica holding the most of the
/// vertex's edges (ties to the lowest partition id).
VertexCutPartition finalize_vertex_cut(const Graph& graph, PartitionId parts,
                                       std::vector<PartitionId> edge_owner) {
  VertexCutPartition result;
  result.partition_count = parts;
  result.edge_owner = std::move(edge_owner);
  const VertexId n = graph.vertex_count();
  result.replicas.assign(n, {});
  result.master.assign(n, 0);

  // Count per-vertex edges in each partition (sparse: small vectors).
  std::vector<std::vector<std::pair<PartitionId, EdgeIndex>>> presence(n);
  const auto touch = [&](VertexId v, PartitionId p) {
    auto& vec = presence[v];
    for (auto& [part, cnt] : vec) {
      if (part == p) {
        ++cnt;
        return;
      }
    }
    vec.emplace_back(p, 1);
  };
  for (VertexId u = 0; u < n; ++u) {
    const auto nbrs = graph.out_neighbors(u);
    for (EdgeIndex i = 0; i < nbrs.size(); ++i) {
      const PartitionId p = result.edge_owner[graph.edge_id(u, i)];
      touch(u, p);
      touch(nbrs[i], p);
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    auto& vec = presence[v];
    if (vec.empty()) continue;  // isolated vertex: no replicas
    std::sort(vec.begin(), vec.end());
    EdgeIndex best = 0;
    PartitionId master = vec.front().first;
    for (const auto& [part, cnt] : vec) {
      result.replicas[v].push_back(part);
      if (cnt > best) {
        best = cnt;
        master = part;
      }
    }
    result.master[v] = master;
  }
  return result;
}

}  // namespace

VertexCutPartition partition_vertex_cut_greedy(const Graph& graph,
                                               PartitionId parts) {
  G10_CHECK(parts > 0);
  const VertexId n = graph.vertex_count();
  std::vector<PartitionId> edge_owner(graph.edge_count());
  std::vector<EdgeIndex> load(parts, 0);
  // Per-vertex replica bitmask; fine for the partition counts we simulate.
  G10_CHECK_MSG(parts <= 64, "greedy vertex-cut supports up to 64 partitions");
  std::vector<std::uint64_t> present(n, 0);

  // PowerGraph/HDRF-style greedy: prefer partitions already holding the
  // endpoints, plus a normalized balance term. The balance coefficient is
  // above 1 so that once a hub's partition becomes the most loaded, the
  // hub is replicated onto an emptier partition instead of clumping all of
  // its edges in one place.
  constexpr double kBalanceWeight = 1.2;
  for (VertexId u = 0; u < n; ++u) {
    const auto nbrs = graph.out_neighbors(u);
    for (EdgeIndex i = 0; i < nbrs.size(); ++i) {
      const VertexId v = nbrs[i];
      EdgeIndex min_load = std::numeric_limits<EdgeIndex>::max();
      EdgeIndex max_load = 0;
      for (PartitionId p = 0; p < parts; ++p) {
        min_load = std::min(min_load, load[p]);
        max_load = std::max(max_load, load[p]);
      }
      const double spread =
          static_cast<double>(max_load - min_load) + 1.0;
      PartitionId target = 0;
      double best_score = -1.0;
      for (PartitionId p = 0; p < parts; ++p) {
        const double has_u = (present[u] >> p) & 1u ? 1.0 : 0.0;
        const double has_v = (present[v] >> p) & 1u ? 1.0 : 0.0;
        const double balance =
            static_cast<double>(max_load - load[p]) / spread;
        const double score = has_u + has_v + kBalanceWeight * balance;
        if (score > best_score) {
          best_score = score;
          target = p;
        }
      }
      edge_owner[graph.edge_id(u, i)] = target;
      ++load[target];
      present[u] |= (1ull << target);
      present[v] |= (1ull << target);
    }
  }
  return finalize_vertex_cut(graph, parts, std::move(edge_owner));
}

VertexCutPartition partition_vertex_cut_random(const Graph& graph,
                                               PartitionId parts,
                                               std::uint64_t seed) {
  G10_CHECK(parts > 0);
  Rng rng(seed);
  std::vector<PartitionId> edge_owner(graph.edge_count());
  for (auto& p : edge_owner) {
    p = static_cast<PartitionId>(rng.next_below(parts));
  }
  return finalize_vertex_cut(graph, parts, std::move(edge_owner));
}

VertexCutPartition partition_vertex_cut_range_source(const Graph& graph,
                                                     PartitionId parts) {
  G10_CHECK(parts > 0);
  std::vector<PartitionId> edge_owner(graph.edge_count());
  const auto n = static_cast<std::uint64_t>(graph.vertex_count());
  for (VertexId u = 0; u < graph.vertex_count(); ++u) {
    const auto p =
        static_cast<PartitionId>(static_cast<std::uint64_t>(u) * parts / n);
    for (EdgeIndex e = graph.out_offsets()[u]; e < graph.out_offsets()[u + 1];
         ++e) {
      edge_owner[e] = p;
    }
  }
  return finalize_vertex_cut(graph, parts, std::move(edge_owner));
}

VertexCutPartition partition_vertex_cut_hash_source(const Graph& graph,
                                                    PartitionId parts) {
  G10_CHECK(parts > 0);
  std::vector<PartitionId> edge_owner(graph.edge_count());
  for (VertexId u = 0; u < graph.vertex_count(); ++u) {
    const std::uint64_t h =
        (static_cast<std::uint64_t>(u) + 1) * 0x9E3779B97F4A7C15ULL;
    const auto p = static_cast<PartitionId>((h >> 32) % parts);
    for (EdgeIndex e = graph.out_offsets()[u]; e < graph.out_offsets()[u + 1];
         ++e) {
      edge_owner[e] = p;
    }
  }
  return finalize_vertex_cut(graph, parts, std::move(edge_owner));
}

}  // namespace g10::graph
