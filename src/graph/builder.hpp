// Edge-list accumulation and conversion to CSR.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace g10::graph {

/// Accumulates (src, dst) pairs and finalizes into a Graph.
///
/// Finalization sorts rows, optionally removes self-loops and duplicate
/// edges, and optionally symmetrizes (adds the reverse of every edge) for
/// undirected datasets.
class GraphBuilder {
 public:
  explicit GraphBuilder(VertexId vertex_count);

  void add_edge(VertexId src, VertexId dst);

  /// Weighted variant; mixing with the unweighted overload gives the
  /// unweighted edges weight 1.
  void add_edge(VertexId src, VertexId dst, double weight);

  void reserve(std::size_t edges);

  std::size_t pending_edges() const { return edges_.size(); }
  VertexId vertex_count() const { return n_; }

  struct Options {
    bool symmetrize = false;       ///< add reverse edges (undirected graph)
    bool remove_self_loops = true; ///< drop (v, v)
    bool deduplicate = true;       ///< collapse parallel edges
    std::string name = "graph";
  };

  /// Consumes the builder. The builder is empty afterwards.
  Graph build(const Options& options);

 private:
  struct Edge {
    VertexId src;
    VertexId dst;
    double weight;
  };

  VertexId n_;
  std::vector<Edge> edges_;
  bool weighted_ = false;
};

}  // namespace g10::graph
