#include "graph/builder.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace g10::graph {

GraphBuilder::GraphBuilder(VertexId vertex_count) : n_(vertex_count) {}

void GraphBuilder::add_edge(VertexId src, VertexId dst) {
  G10_CHECK_MSG(src < n_ && dst < n_,
                "edge (" << src << "," << dst << ") out of range, n=" << n_);
  edges_.push_back(Edge{src, dst, 1.0});
}

void GraphBuilder::add_edge(VertexId src, VertexId dst, double weight) {
  G10_CHECK_MSG(src < n_ && dst < n_,
                "edge (" << src << "," << dst << ") out of range, n=" << n_);
  edges_.push_back(Edge{src, dst, weight});
  weighted_ = true;
}

void GraphBuilder::reserve(std::size_t edges) { edges_.reserve(edges); }

Graph GraphBuilder::build(const Options& options) {
  auto edges = std::move(edges_);
  const bool weighted = weighted_;
  edges_.clear();
  weighted_ = false;

  if (options.symmetrize) {
    const std::size_t original = edges.size();
    edges.reserve(original * 2);
    for (std::size_t i = 0; i < original; ++i) {
      edges.push_back(Edge{edges[i].dst, edges[i].src, edges[i].weight});
    }
  }
  if (options.remove_self_loops) {
    std::erase_if(edges, [](const Edge& e) { return e.src == e.dst; });
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.src != b.src) return a.src < b.src;
    if (a.dst != b.dst) return a.dst < b.dst;
    return a.weight < b.weight;  // dedup keeps the lightest parallel edge
  });
  if (options.deduplicate) {
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const Edge& a, const Edge& b) {
                              return a.src == b.src && a.dst == b.dst;
                            }),
                edges.end());
  }

  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n_) + 1, 0);
  for (const Edge& e : edges) ++offsets[e.src + 1];
  for (VertexId v = 0; v < n_; ++v) offsets[v + 1] += offsets[v];
  std::vector<VertexId> targets;
  targets.reserve(edges.size());
  std::vector<double> weights;
  if (weighted) weights.reserve(edges.size());
  for (const Edge& e : edges) {
    targets.push_back(e.dst);
    if (weighted) weights.push_back(e.weight);
  }
  Graph graph(std::move(offsets), std::move(targets), options.symmetrize,
              options.name);
  if (weighted) graph.set_weights(std::move(weights));
  return graph;
}

}  // namespace g10::graph
