#include "graph/graph.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace g10::graph {

Graph::Graph(std::vector<EdgeIndex> out_offsets,
             std::vector<VertexId> out_targets, bool undirected,
             std::string name)
    : out_offsets_(std::move(out_offsets)),
      out_targets_(std::move(out_targets)),
      undirected_(undirected),
      name_(std::move(name)) {
  G10_CHECK(!out_offsets_.empty());
  G10_CHECK(out_offsets_.front() == 0);
  G10_CHECK(out_offsets_.back() == out_targets_.size());
  for (std::size_t i = 1; i < out_offsets_.size(); ++i) {
    G10_CHECK_MSG(out_offsets_[i - 1] <= out_offsets_[i],
                  "CSR offsets must be non-decreasing");
  }
}

void Graph::set_weights(std::vector<double> weights) {
  G10_CHECK_MSG(weights.size() == out_targets_.size(),
                "weights must match the edge count");
  weights_ = std::move(weights);
}

void Graph::ensure_in_index() const {
  if (in_built_) return;
  const VertexId n = vertex_count();
  in_offsets_.assign(n + 1, 0);
  for (VertexId t : out_targets_) ++in_offsets_[t + 1];
  for (VertexId v = 0; v < n; ++v) in_offsets_[v + 1] += in_offsets_[v];
  in_sources_.resize(out_targets_.size());
  in_edge_ids_.resize(out_targets_.size());
  std::vector<EdgeIndex> cursor(in_offsets_.begin(), in_offsets_.end() - 1);
  for (VertexId u = 0; u < n; ++u) {
    for (EdgeIndex e = out_offsets_[u]; e < out_offsets_[u + 1]; ++e) {
      const EdgeIndex slot = cursor[out_targets_[e]]++;
      in_sources_[slot] = u;
      in_edge_ids_[slot] = e;
    }
  }
  // Sources per target arrive in ascending u order by construction.
  in_built_ = true;
}

double Graph::in_weight(VertexId v, EdgeIndex i) const {
  ensure_in_index();
  return edge_weight(in_edge_ids_[in_offsets_[v] + i]);
}

std::span<const VertexId> Graph::in_neighbors(VertexId v) const {
  ensure_in_index();
  return {in_sources_.data() + in_offsets_[v],
          in_sources_.data() + in_offsets_[v + 1]};
}

EdgeIndex Graph::in_degree(VertexId v) const {
  ensure_in_index();
  return in_offsets_[v + 1] - in_offsets_[v];
}

std::span<const EdgeIndex> Graph::in_edge_ids(VertexId v) const {
  ensure_in_index();
  return {in_edge_ids_.data() + in_offsets_[v],
          in_edge_ids_.data() + in_offsets_[v + 1]};
}

bool Graph::has_edge(VertexId u, VertexId v) const {
  const auto nbrs = out_neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

}  // namespace g10::graph
