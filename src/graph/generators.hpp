// Synthetic graph generators standing in for the Graphalytics datasets used
// in the paper's evaluation (see DESIGN.md §1). All generators are
// deterministic given their seed.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace g10::graph {

/// R-MAT / graph500-style power-law generator.
struct RmatParams {
  int scale = 14;            ///< 2^scale vertices
  double edge_factor = 16.0; ///< edges = edge_factor * vertices
  double a = 0.57, b = 0.19, c = 0.19;  ///< quadrant probabilities; d = 1-a-b-c
  bool undirected = false;
  std::uint64_t seed = 1;
};
Graph generate_rmat(const RmatParams& params);

/// Erdős–Rényi G(n, m): m distinct directed edges chosen uniformly.
struct ErdosRenyiParams {
  VertexId vertices = 1 << 14;
  EdgeIndex edges = 1 << 18;
  bool undirected = false;
  std::uint64_t seed = 1;
};
Graph generate_erdos_renyi(const ErdosRenyiParams& params);

/// 2-D grid with 4-neighborhood (road-network-like: bounded degree, large
/// diameter). Always undirected.
Graph generate_grid(VertexId width, VertexId height);

/// Attaches uniform-random edge weights in [lo, hi) — the stand-in for
/// Graphalytics' weighted datasets (SSSP workloads). Deterministic by seed.
/// Symmetrized graphs get symmetric weights: each undirected pair {u, v}
/// carries the same weight in both directions.
void assign_random_weights(Graph& graph, double lo, double hi,
                           std::uint64_t seed);

/// LDBC-Datagen-like clustered power-law graph: vertices are grouped into
/// communities with Zipf-distributed sizes; most edges stay inside a
/// community, the rest connect communities preferentially by degree. This
/// reproduces the community structure that makes CDLP workloads interesting
/// and the degree skew that drives load imbalance.
struct DatagenParams {
  VertexId vertices = 1 << 14;
  double mean_degree = 20.0;
  double intra_community_fraction = 0.7;  ///< fraction of edges inside
  double community_zipf_s = 1.3;          ///< community size skew
  std::uint32_t communities = 256;
  bool undirected = true;
  std::uint64_t seed = 1;
};
Graph generate_datagen_like(const DatagenParams& params);

}  // namespace g10::graph
