#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "graph/builder.hpp"

namespace g10::graph {

Graph generate_rmat(const RmatParams& params) {
  G10_CHECK(params.scale > 0 && params.scale < 31);
  G10_CHECK(params.a > 0 && params.b >= 0 && params.c >= 0);
  const double d = 1.0 - params.a - params.b - params.c;
  G10_CHECK_MSG(d >= 0.0, "RMAT quadrant probabilities must sum to <= 1");

  const auto n = static_cast<VertexId>(1u << params.scale);
  const auto m = static_cast<EdgeIndex>(
      params.edge_factor * static_cast<double>(n));
  Rng rng(params.seed);
  GraphBuilder builder(n);
  builder.reserve(m);
  for (EdgeIndex e = 0; e < m; ++e) {
    VertexId src = 0;
    VertexId dst = 0;
    for (int bit = params.scale - 1; bit >= 0; --bit) {
      // Noise on the quadrant probabilities avoids exact self-similarity
      // artifacts (standard "smoothing" used by graph500 generators).
      const double noise = 0.9 + 0.2 * rng.next_double();
      const double ab = (params.a + params.b) * noise;
      const double a_frac = params.a / (params.a + params.b);
      const double c_frac =
          (params.c + d) > 0 ? params.c / (params.c + d) : 0.0;
      const double r1 = rng.next_double();
      const double r2 = rng.next_double();
      if (r1 < ab) {
        if (r2 >= a_frac) dst |= (1u << bit);
      } else {
        src |= (1u << bit);
        if (r2 >= c_frac) dst |= (1u << bit);
      }
    }
    builder.add_edge(src, dst);
  }
  GraphBuilder::Options options;
  options.symmetrize = params.undirected;
  options.name = "rmat-s" + std::to_string(params.scale);
  return builder.build(options);
}

Graph generate_erdos_renyi(const ErdosRenyiParams& params) {
  G10_CHECK(params.vertices > 1);
  const auto n64 = static_cast<std::uint64_t>(params.vertices);
  G10_CHECK_MSG(params.edges < n64 * (n64 - 1) / 2,
                "too many edges requested for G(n, m)");
  Rng rng(params.seed);
  GraphBuilder builder(params.vertices);
  builder.reserve(params.edges);
  // Draw with replacement, deduplicate at build; top up until m distinct.
  EdgeIndex produced = 0;
  while (produced < params.edges) {
    const auto src = static_cast<VertexId>(rng.next_below(n64));
    const auto dst = static_cast<VertexId>(rng.next_below(n64));
    if (src == dst) continue;
    builder.add_edge(src, dst);
    ++produced;
  }
  GraphBuilder::Options options;
  options.symmetrize = params.undirected;
  options.name = "er-n" + std::to_string(params.vertices);
  return builder.build(options);
}

Graph generate_grid(VertexId width, VertexId height) {
  G10_CHECK(width > 0 && height > 0);
  const auto n = static_cast<std::uint64_t>(width) * height;
  G10_CHECK_MSG(n <= 0xFFFFFFFFull, "grid too large for 32-bit vertex ids");
  GraphBuilder builder(static_cast<VertexId>(n));
  const auto id = [width](VertexId x, VertexId y) {
    return y * width + x;
  };
  for (VertexId y = 0; y < height; ++y) {
    for (VertexId x = 0; x < width; ++x) {
      if (x + 1 < width) builder.add_edge(id(x, y), id(x + 1, y));
      if (y + 1 < height) builder.add_edge(id(x, y), id(x, y + 1));
    }
  }
  GraphBuilder::Options options;
  options.symmetrize = true;
  options.name =
      "grid-" + std::to_string(width) + "x" + std::to_string(height);
  return builder.build(options);
}

void assign_random_weights(Graph& graph, double lo, double hi,
                           std::uint64_t seed) {
  G10_CHECK(lo <= hi);
  std::vector<double> weights(graph.edge_count());
  for (VertexId u = 0; u < graph.vertex_count(); ++u) {
    const auto nbrs = graph.out_neighbors(u);
    for (EdgeIndex i = 0; i < nbrs.size(); ++i) {
      const VertexId v = nbrs[i];
      // Derive the weight from the (unordered) endpoint pair so both
      // directions of a symmetrized edge agree, independent of iteration
      // order.
      const VertexId a = std::min(u, v);
      const VertexId b = std::max(u, v);
      std::uint64_t mix = seed ^ (static_cast<std::uint64_t>(a) << 32) ^
                          static_cast<std::uint64_t>(b);
      const std::uint64_t bits = splitmix64_next(mix);
      const double unit =
          static_cast<double>(bits >> 11) * 0x1.0p-53;  // [0, 1)
      weights[graph.edge_id(u, i)] = lo + (hi - lo) * unit;
    }
  }
  graph.set_weights(std::move(weights));
}

Graph generate_datagen_like(const DatagenParams& params) {
  G10_CHECK(params.vertices > 1);
  G10_CHECK(params.communities > 0);
  G10_CHECK(params.intra_community_fraction >= 0.0 &&
            params.intra_community_fraction <= 1.0);
  Rng rng(params.seed);

  // Assign every vertex to a community with Zipf-skewed popularity.
  std::vector<std::uint32_t> community(params.vertices);
  for (auto& c : community) {
    c = static_cast<std::uint32_t>(
        rng.next_zipf(params.communities, params.community_zipf_s));
  }
  // Bucket members per community for fast intra-community sampling.
  std::vector<std::vector<VertexId>> members(params.communities);
  for (VertexId v = 0; v < params.vertices; ++v) {
    members[community[v]].push_back(v);
  }

  const auto target_edges = static_cast<EdgeIndex>(
      params.mean_degree * static_cast<double>(params.vertices) /
      (params.undirected ? 2.0 : 1.0));
  GraphBuilder builder(params.vertices);
  builder.reserve(target_edges);
  const auto n64 = static_cast<std::uint64_t>(params.vertices);
  for (EdgeIndex e = 0; e < target_edges; ++e) {
    const auto src = static_cast<VertexId>(rng.next_below(n64));
    VertexId dst = src;
    if (rng.next_bool(params.intra_community_fraction) &&
        members[community[src]].size() > 1) {
      const auto& bucket = members[community[src]];
      dst = bucket[rng.next_below(bucket.size())];
    } else {
      // Preferential cross-community edge: sample a Zipf-skewed vertex so a
      // few vertices become global hubs (degree skew drives imbalance).
      dst = static_cast<VertexId>(rng.next_zipf(n64, 0.8));
    }
    if (dst == src) continue;
    builder.add_edge(src, dst);
  }
  GraphBuilder::Options options;
  options.symmetrize = params.undirected;
  options.name = "datagen-n" + std::to_string(params.vertices);
  return builder.build(options);
}

}  // namespace g10::graph
