// Graph partitioning.
//
// The Pregel-style engine (Giraph stand-in) uses *edge-cut* partitioning:
// each vertex — with all its out-edges — is owned by exactly one partition,
// and messages crossing partitions traverse the network.
//
// The GAS engine (PowerGraph stand-in) uses *vertex-cut* partitioning: edges
// are distributed across partitions and high-degree vertices are replicated
// (one master plus mirrors), with gather/apply/scatter exchanges between
// them. The greedy heuristic mirrors PowerGraph's default edge placement.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace g10::graph {

using PartitionId = std::uint32_t;

/// Vertex → partition assignment (edge-cut).
struct EdgeCutPartition {
  PartitionId partition_count = 0;
  std::vector<PartitionId> owner;  ///< indexed by VertexId

  /// Number of vertices per partition.
  std::vector<VertexId> vertex_counts() const;
  /// Number of out-edges whose source lives in each partition.
  std::vector<EdgeIndex> edge_counts(const Graph& graph) const;
  /// Fraction of edges whose endpoints live in different partitions.
  double cut_fraction(const Graph& graph) const;
};

/// Modulo-hash of the vertex id (Giraph's default partitioner).
EdgeCutPartition partition_by_hash(const Graph& graph, PartitionId parts);

/// Contiguous ranges with (approximately) equal vertex counts.
EdgeCutPartition partition_by_range(const Graph& graph, PartitionId parts);

/// Contiguous ranges chosen so each partition holds ~equal out-edge counts.
EdgeCutPartition partition_by_edge_balance(const Graph& graph,
                                           PartitionId parts);

/// Edge → partition assignment with vertex replication (vertex-cut).
struct VertexCutPartition {
  PartitionId partition_count = 0;
  /// Owning partition of each edge, indexed by global edge id (CSR order).
  std::vector<PartitionId> edge_owner;
  /// Master partition of each vertex.
  std::vector<PartitionId> master;
  /// All partitions where each vertex has a replica (sorted, includes master).
  std::vector<std::vector<PartitionId>> replicas;

  std::vector<EdgeIndex> edge_counts() const;
  /// Mean number of replicas per vertex (PowerGraph's replication factor λ).
  double replication_factor() const;
};

/// PowerGraph-style greedy vertex-cut: place each edge in a partition that
/// already holds both endpoints, else one endpoint (least loaded among
/// candidates), else the least-loaded partition overall.
VertexCutPartition partition_vertex_cut_greedy(const Graph& graph,
                                               PartitionId parts);

/// Random vertex-cut baseline: uniform edge placement.
VertexCutPartition partition_vertex_cut_random(const Graph& graph,
                                               PartitionId parts,
                                               std::uint64_t seed);

/// Hash-by-source vertex-cut: every out-edge of u lands on hash(u)'s
/// partition. Cheap and common in practice, but a high-degree hub drags its
/// whole edge list onto one partition — the "poor workload distribution,
/// typical for graph applications" the paper observes in §IV-D.
VertexCutPartition partition_vertex_cut_hash_source(const Graph& graph,
                                                    PartitionId parts);

/// Range-by-source vertex-cut: contiguous source-id ranges with equal
/// vertex counts, the placement that input-file splits produce in practice.
/// Degree skew concentrated in an id range (e.g. R-MAT hubs at low ids)
/// then lands wholesale on one partition — the strongest realistic source
/// of the inter-worker imbalance of §IV-D.
VertexCutPartition partition_vertex_cut_range_source(const Graph& graph,
                                                     PartitionId parts);

}  // namespace g10::graph
