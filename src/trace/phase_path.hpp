// Hierarchical phase-instance paths.
//
// A running workload is a tree of phase instances; each instance is named by
// the path of (phase-type, instance-index) pairs from the root, e.g.
//   Job.0/Execute.0/Superstep.3/WorkerCompute.2/ComputeThread.5
// Engines emit these paths in their logs; Grade10 parses them and matches
// the types against the user-supplied execution model.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace g10::trace {

struct PathElement {
  std::string type;       ///< phase-type name, e.g. "Superstep"
  std::int64_t index = 0; ///< instance index among siblings of this type

  friend bool operator==(const PathElement&, const PathElement&) = default;
};

struct PhasePath {
  std::vector<PathElement> elements;

  bool empty() const { return elements.empty(); }
  std::size_t depth() const { return elements.size(); }
  const PathElement& leaf() const { return elements.back(); }

  /// Parent path (all but the last element).
  PhasePath parent() const;

  /// Child path with one more element.
  PhasePath child(std::string type, std::int64_t index) const;

  std::string to_string() const;

  /// Appends the rendered path to `out` without intermediate allocations
  /// (hot in analysis ingestion, where the buffer is reused across events).
  void append_to(std::string& out) const;

  friend bool operator==(const PhasePath&, const PhasePath&) = default;
};

/// Parses "Type.idx/Type.idx/..."; nullopt on malformed input.
std::optional<PhasePath> parse_phase_path(std::string_view text);

}  // namespace g10::trace
