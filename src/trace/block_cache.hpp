// Byte-budgeted sharded LRU cache of decoded trace blocks.
//
// Decoding a columnar block is the expensive step of binary ingestion
// (varint/delta expansion plus string materialization); the cache keeps
// recently decoded blocks resident so repeated reads of the same trace —
// warm `g10_analyze` re-runs, the det-check thread sweep, overlapping
// filtered queries — skip the decode entirely. The budget bounds *decoded*
// bytes (DecodedBlock::approx_bytes), which is what actually occupies RAM;
// the encoded file stays demand-paged behind mmap and is the kernel's
// problem.
//
// Sharded by key hash so the prefetcher's decode threads and the consumer
// do not serialize on one mutex. Each shard owns budget/shards bytes and
// evicts from its own LRU tail; eviction never removes a shard's most
// recently inserted entry, so a block larger than the whole budget is still
// usable for the get() that follows its put() (it just evicts everything
// else and is evicted next). Small budgets collapse to fewer shards —
// otherwise N shards each retaining their newest block could pin N blocks
// and quietly stand above a tiny budget.
//
// Values are shared_ptr<const DecodedBlock>: an evicted block stays alive
// while any reader still holds it, so eviction is never a use-after-free,
// just a future re-decode.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "trace/g10t_io.hpp"

namespace g10::trace {

class BlockCache {
 public:
  struct Options {
    /// Total decoded-byte budget across all shards. 0 = cache nothing
    /// (every get misses; puts are dropped) — the forced-eviction path CI
    /// exercises still works because readers fall back to direct decode.
    std::size_t budget_bytes = std::size_t{256} << 20;
    std::size_t shards = 8;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t resident_bytes = 0;
    std::size_t resident_blocks = 0;
  };

  explicit BlockCache(const Options& options);

  /// The cached block for `key`, or nullptr (counting a miss).
  std::shared_ptr<const DecodedBlock> get(std::uint64_t key);

  /// Inserts (or refreshes) `key`, then evicts LRU entries until the shard
  /// is back under its budget share.
  void put(std::uint64_t key, std::shared_ptr<const DecodedBlock> block);

  /// Aggregated over all shards.
  Stats stats() const;

  std::size_t budget_bytes() const { return budget_bytes_; }

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::shared_ptr<const DecodedBlock> block;
    std::size_t bytes = 0;
  };
  struct Shard {
    mutable Mutex mutex;
    /// Front = most recently used.
    std::list<Entry> lru G10_GUARDED_BY(mutex);
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index
        G10_GUARDED_BY(mutex);
    std::size_t bytes G10_GUARDED_BY(mutex) = 0;
    std::uint64_t hits G10_GUARDED_BY(mutex) = 0;
    std::uint64_t misses G10_GUARDED_BY(mutex) = 0;
    std::uint64_t insertions G10_GUARDED_BY(mutex) = 0;
    std::uint64_t evictions G10_GUARDED_BY(mutex) = 0;
  };

  Shard& shard_of(std::uint64_t key) {
    // Golden-ratio scramble so strided block ids still spread over shards.
    const std::uint64_t scrambled = key * 0x9e3779b97f4a7c15ull;
    return *shards_[(scrambled ^ (scrambled >> 32)) & mask_];
  }

  std::size_t budget_bytes_;
  std::size_t shard_budget_;
  std::uint64_t mask_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace g10::trace
