// Read-only file views: mmap-backed demand paging with a buffered-read
// fallback.
//
// The binary trace reader wants the whole file addressable without reading
// it: the OS pages in only the blocks actually decoded, so a cold filtered
// analysis of a huge `.g10t` touches kilobytes, not gigabytes. mmap gives
// exactly that. The fallback mode (Options::use_mmap = false) reads the
// file into an owned buffer instead — used on platforms or filesystems
// where mmap is unavailable, and by the identity tests that pin both paths
// to byte-equal views.
//
// A mapped view of a file that another process truncates underneath us
// would fault on access; trace files are written once and never rewritten
// in place (g10_convert writes to the final name via a complete stream), so
// this is acceptable for the tool set. The reader still validates the file
// size against the header before trusting any offset.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace g10::trace {

class MappedFile {
 public:
  struct Options {
    /// false = slurp into an owned buffer instead of mapping.
    bool use_mmap = true;
  };

  MappedFile() = default;
  ~MappedFile() { reset(); }

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Opens and maps (or reads) `path`. On failure returns an error message
  /// including the filename and the errno string.
  static std::optional<std::string> open(const std::string& path,
                                         const Options& options,
                                         MappedFile& out);

  bool is_open() const { return opened_; }
  bool is_mapped() const { return mapped_; }
  std::string_view bytes() const { return {data_, size_}; }
  std::size_t size() const { return size_; }

  /// Advises the kernel that `[offset, offset+length)` will be read soon
  /// (madvise WILLNEED). No-op in buffered mode or out of range.
  void advise_will_need(std::size_t offset, std::size_t length) const;

 private:
  void reset();

  const char* data_ = nullptr;
  std::size_t size_ = 0;
  bool opened_ = false;
  bool mapped_ = false;
  std::string buffer_;  ///< owns the bytes in buffered mode
};

}  // namespace g10::trace
