#include "trace/mapped_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace g10::trace {

namespace {

std::string errno_message(const std::string& path, const char* action) {
  return std::string(action) + " " + path + ": " + std::strerror(errno);
}

}  // namespace

MappedFile::MappedFile(MappedFile&& other) noexcept {
  *this = std::move(other);
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this == &other) return *this;
  reset();
  buffer_ = std::move(other.buffer_);
  // In buffered mode the view must track our own buffer: for tiny files
  // std::string keeps the bytes in its inline (SSO) storage, so the
  // moved-from data_ pointer would dangle once `other` is destroyed.
  data_ = other.mapped_ ? other.data_
                        : (buffer_.empty() ? nullptr : buffer_.data());
  size_ = other.size_;
  opened_ = other.opened_;
  mapped_ = other.mapped_;
  other.data_ = nullptr;
  other.size_ = 0;
  other.opened_ = false;
  other.mapped_ = false;
  return *this;
}

void MappedFile::reset() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
  opened_ = false;
  mapped_ = false;
  buffer_.clear();
}

std::optional<std::string> MappedFile::open(const std::string& path,
                                            const Options& options,
                                            MappedFile& out) {
  out.reset();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return errno_message(path, "cannot open");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const std::string error = errno_message(path, "cannot stat");
    ::close(fd);
    return error;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    out.opened_ = true;
    return std::nullopt;
  }

  if (options.use_mmap) {
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      ::close(fd);
      out.data_ = static_cast<const char*>(map);
      out.size_ = size;
      out.opened_ = true;
      out.mapped_ = true;
      return std::nullopt;
    }
    // Fall through to the buffered path (e.g. filesystems without mmap).
  }

  out.buffer_.resize(size);
  std::size_t total = 0;
  while (total < size) {
    const ssize_t n =
        ::read(fd, out.buffer_.data() + total, size - total);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string error = errno_message(path, "cannot read");
      ::close(fd);
      out.reset();
      return error;
    }
    if (n == 0) break;  // file shrank underneath us; size check catches it
    total += static_cast<std::size_t>(n);
  }
  ::close(fd);
  out.buffer_.resize(total);
  out.data_ = out.buffer_.data();
  out.size_ = total;
  out.opened_ = true;
  return std::nullopt;
}

void MappedFile::advise_will_need(std::size_t offset,
                                  std::size_t length) const {
  if (!mapped_ || data_ == nullptr || offset >= size_) return;
  length = std::min(length, size_ - offset);
  // Align down to the page containing `offset`; madvise wants page-aligned
  // starts.
  const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  const std::size_t start = offset & ~(page - 1);
  ::madvise(const_cast<char*>(data_) + start, length + (offset - start),
            MADV_WILLNEED);
}

}  // namespace g10::trace
