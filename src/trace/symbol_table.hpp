// Interned names and compact phase paths for the trace-generation fast path.
//
// Engines emit millions of hierarchical phase paths like
//   Job.0/Execute.0/Superstep.3/WorkerCompute.2/ComputeThread.5
// Building a PhasePath allocates one std::string per element and keying a
// map by its rendered form allocates the full string again. The fast path
// replaces both: phase-type and resource names are interned once in a
// process-wide SymbolTable, and paths travel as PathRef — an inline
// small-vector of (symbol, index) pairs carrying an incrementally
// maintained hash — converting to/from the PhasePath/string form only at
// the log-write and parse boundaries.
//
// Symbols are process-local handles: their numeric values depend on intern
// order and must never be persisted. Rendered output always goes through
// the interned names, so logs are byte-identical regardless of intern
// order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "trace/phase_path.hpp"

namespace g10::trace {

/// Handle to an interned name. Never persisted; only meaningful within the
/// owning SymbolTable (in practice, SymbolTable::global()).
using Symbol = std::uint32_t;

/// Thread-safe append-only intern table. Interning is mutex-protected (log
/// ingestion is multi-threaded); the returned string_views stay valid for
/// the table's lifetime because names live in a deque.
class SymbolTable {
 public:
  /// The process-wide table used by PathRef and the engines.
  static SymbolTable& global();

  /// Returns the symbol for `name`, interning it on first use.
  Symbol intern(std::string_view name);

  /// The interned spelling of `symbol`.
  std::string_view name(Symbol symbol) const;

  std::size_t size() const;

 private:
  struct TransparentHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  mutable Mutex mutex_;
  std::deque<std::string> names_ G10_GUARDED_BY(mutex_);
  std::unordered_map<std::string_view, Symbol, TransparentHash,
                     std::equal_to<>>
      index_ G10_GUARDED_BY(mutex_);
};

/// One (phase-type, instance-index) path element in interned form.
struct PathEntry {
  Symbol type = 0;
  std::int64_t index = 0;

  friend bool operator==(const PathEntry&, const PathEntry&) = default;
};

/// A phase-instance path in interned form: an inline small-vector of
/// PathEntry with a precomputed hash. Copying never allocates for depths up
/// to kInlineCapacity (the built-in models max out at depth 5); deeper
/// paths spill to a heap vector.
class PathRef {
 public:
  static constexpr std::size_t kInlineCapacity = 8;

  PathRef() = default;

  bool empty() const { return size_ == 0; }
  std::size_t depth() const { return size_; }
  std::size_t hash() const { return hash_; }

  const PathEntry* begin() const { return data(); }
  const PathEntry* end() const { return data() + size_; }
  const PathEntry& operator[](std::size_t i) const { return data()[i]; }
  const PathEntry& leaf() const { return data()[size_ - 1]; }

  /// Appends an element in place.
  void push(Symbol type, std::int64_t index);

  /// Appends an element, interning `type` in the global table. Engines use
  /// this to build cached path templates; hot loops then copy the template
  /// instead of re-interning.
  void push(std::string_view type, std::int64_t index) {
    push(SymbolTable::global().intern(type), index);
  }

  /// Child path with one more element (interned-symbol and interning forms).
  PathRef child(Symbol type, std::int64_t index) const;
  PathRef child(std::string_view type, std::int64_t index) const {
    return child(SymbolTable::global().intern(type), index);
  }

  /// Parent path (all but the last element).
  PathRef parent() const;

  friend bool operator==(const PathRef& a, const PathRef& b) {
    if (a.size_ != b.size_ || a.hash_ != b.hash_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (a.data()[i] != b.data()[i]) return false;
    }
    return true;
  }

  /// Lossless conversions at the log-write / parse boundary.
  PhasePath to_phase_path() const;
  std::string to_string() const;
  void append_to(std::string& out) const;
  static PathRef from_phase_path(const PhasePath& path);

 private:
  const PathEntry* data() const {
    return size_ <= kInlineCapacity ? inline_ : overflow_.data();
  }

  std::size_t size_ = 0;
  std::size_t hash_ = kEmptyHash;
  PathEntry inline_[kInlineCapacity] = {};
  std::vector<PathEntry> overflow_;  // holds ALL entries once spilled

  static constexpr std::size_t kEmptyHash = 0x9e3779b97f4a7c15ull;
};

struct PathRefHash {
  std::size_t operator()(const PathRef& path) const { return path.hash(); }
};

}  // namespace g10::trace
