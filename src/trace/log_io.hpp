// Text serialization of the trace record types.
//
// Format: one record per line, tab-separated, leading record-type token:
//   META   <key>  <value>
//   PHASE  <B|E>  <path>      <time_ns>  <machine>
//   BLOCK  <resource>  <path>  <begin_ns>  <end_ns>  <machine>
//   SAMPLE <resource>  <machine>  <time_ns>  <value>
// META records carry run provenance (e.g. the fault spec a run was injected
// with, key "faults"); tools like the trace linter cross-check trace content
// against them. Lines starting with '#' and blank lines are ignored. The parser reports
// malformed lines with their line number and the offending text; in
// recovery mode it skips bad lines and keeps going (collecting up to
// ParseOptions::max_errors diagnostics) instead of stopping at the first —
// real logs from crashed workers are routinely truncated or corrupted.
//
// Ingestion is chunked and zero-copy: the input is bulk-read once, split
// into newline-aligned chunks parsed concurrently (string_view fields +
// from_chars, no per-line string or stream allocation), and merged in
// chunk order. The merged result — records, error list, and every line
// number — is bit-identical to a line-by-line serial parse at any thread
// count; strict (non-recover) parses stop at the same first bad line.
#pragma once

#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "trace/records.hpp"

namespace g10::trace {

/// One META record: run provenance embedded in the log ("faults" carries
/// the canonical fault-spec string the run was injected with).
using LogMeta = std::pair<std::string, std::string>;

void write_phase_event(std::ostream& os, const PhaseEventRecord& rec);
void write_blocking_event(std::ostream& os, const BlockingEventRecord& rec);
void write_monitoring_sample(std::ostream& os,
                             const MonitoringSampleRecord& rec);
void write_log_meta(std::ostream& os, const LogMeta& meta);

/// Writes all loggable records of a run (phase events, blocking events) plus
/// the given monitoring samples, in a stable order. META records, when
/// given, come right after the header; the default keeps existing callers'
/// output byte-identical.
void write_log(std::ostream& os,
               const std::vector<PhaseEventRecord>& phase_events,
               const std::vector<BlockingEventRecord>& blocking_events,
               const std::vector<MonitoringSampleRecord>& samples,
               const std::vector<LogMeta>& meta = {});

struct ParsedLog {
  std::vector<LogMeta> meta;
  std::vector<PhaseEventRecord> phase_events;
  std::vector<BlockingEventRecord> blocking_events;
  std::vector<MonitoringSampleRecord> samples;

  /// Value of the first META record with `key`, if any.
  std::optional<std::string> meta_value(std::string_view key) const;
};

struct ParseError {
  std::size_t line_number = 0;
  std::string message;
  std::string line;  ///< the offending line's text (trimmed)
};

struct ParseOptions {
  /// When true, malformed lines are skipped (and collected as errors) and
  /// parsing continues; when false, parsing stops at the first bad line.
  bool recover = false;
  /// Cap on stored ParseError entries, so a corrupt multi-GB log cannot
  /// balloon the error list; error_count still counts every bad line.
  std::size_t max_errors = 64;
  /// Parse concurrency. 0 = auto (G10_THREADS env, else hardware threads);
  /// 1 = serial. Results are identical at every setting.
  int threads = 0;
  /// Inputs are split into newline-aligned chunks of at least this many
  /// bytes, one parse task each. Small inputs therefore parse serially;
  /// tests lower this to force multi-chunk parses on tiny logs.
  std::size_t min_chunk_bytes = 1 << 20;
};

/// Parses a log stream; returns the records or the error(s).
/// (A tiny expected<>-style result to stay dependency-free.)
struct ParseResult {
  ParsedLog log;
  /// First error encountered, if any (kept for existing call sites).
  std::optional<ParseError> error;
  /// All collected errors, capped at ParseOptions::max_errors.
  std::vector<ParseError> errors;
  /// Total number of malformed lines seen, including those beyond the cap.
  std::size_t error_count = 0;

  bool ok() const { return !error.has_value(); }
};

ParseResult parse_log(std::istream& is);
ParseResult parse_log(std::istream& is, const ParseOptions& options);

/// Parses an in-memory log (the zero-copy core: record fields are sliced
/// out of `text` with string_views, chunks parse concurrently).
ParseResult parse_log_text(std::string_view text,
                           const ParseOptions& options = {});

/// Bulk-reads `path` in one I/O pass and parses it chunked-concurrently.
/// An unreadable file reports one error with line_number 0.
ParseResult read_log_file(const std::string& path,
                          const ParseOptions& options = {});

}  // namespace g10::trace
