// Text serialization of the trace record types.
//
// Format: one record per line, tab-separated, leading record-type token:
//   PHASE  <B|E>  <path>      <time_ns>  <machine>
//   BLOCK  <resource>  <path>  <begin_ns>  <end_ns>  <machine>
//   SAMPLE <resource>  <machine>  <time_ns>  <value>
// Lines starting with '#' and blank lines are ignored. The parser reports
// the first malformed line with its line number.
#pragma once

#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "trace/records.hpp"

namespace g10::trace {

void write_phase_event(std::ostream& os, const PhaseEventRecord& rec);
void write_blocking_event(std::ostream& os, const BlockingEventRecord& rec);
void write_monitoring_sample(std::ostream& os,
                             const MonitoringSampleRecord& rec);

/// Writes all loggable records of a run (phase events, blocking events) plus
/// the given monitoring samples, in a stable order.
void write_log(std::ostream& os,
               const std::vector<PhaseEventRecord>& phase_events,
               const std::vector<BlockingEventRecord>& blocking_events,
               const std::vector<MonitoringSampleRecord>& samples);

struct ParsedLog {
  std::vector<PhaseEventRecord> phase_events;
  std::vector<BlockingEventRecord> blocking_events;
  std::vector<MonitoringSampleRecord> samples;
};

struct ParseError {
  std::size_t line_number = 0;
  std::string message;
};

/// Parses a log stream; returns the records or the first error.
/// (A tiny expected<>-style result to stay dependency-free.)
struct ParseResult {
  ParsedLog log;
  std::optional<ParseError> error;

  bool ok() const { return !error.has_value(); }
};

ParseResult parse_log(std::istream& is);

}  // namespace g10::trace
