// Text serialization of the trace record types.
//
// Format: one record per line, tab-separated, leading record-type token:
//   PHASE  <B|E>  <path>      <time_ns>  <machine>
//   BLOCK  <resource>  <path>  <begin_ns>  <end_ns>  <machine>
//   SAMPLE <resource>  <machine>  <time_ns>  <value>
// Lines starting with '#' and blank lines are ignored. The parser reports
// malformed lines with their line number and the offending text; in
// recovery mode it skips bad lines and keeps going (collecting up to
// ParseOptions::max_errors diagnostics) instead of stopping at the first —
// real logs from crashed workers are routinely truncated or corrupted.
#pragma once

#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "trace/records.hpp"

namespace g10::trace {

void write_phase_event(std::ostream& os, const PhaseEventRecord& rec);
void write_blocking_event(std::ostream& os, const BlockingEventRecord& rec);
void write_monitoring_sample(std::ostream& os,
                             const MonitoringSampleRecord& rec);

/// Writes all loggable records of a run (phase events, blocking events) plus
/// the given monitoring samples, in a stable order.
void write_log(std::ostream& os,
               const std::vector<PhaseEventRecord>& phase_events,
               const std::vector<BlockingEventRecord>& blocking_events,
               const std::vector<MonitoringSampleRecord>& samples);

struct ParsedLog {
  std::vector<PhaseEventRecord> phase_events;
  std::vector<BlockingEventRecord> blocking_events;
  std::vector<MonitoringSampleRecord> samples;
};

struct ParseError {
  std::size_t line_number = 0;
  std::string message;
  std::string line;  ///< the offending line's text (trimmed)
};

struct ParseOptions {
  /// When true, malformed lines are skipped (and collected as errors) and
  /// parsing continues; when false, parsing stops at the first bad line.
  bool recover = false;
  /// Cap on stored ParseError entries, so a corrupt multi-GB log cannot
  /// balloon the error list; error_count still counts every bad line.
  std::size_t max_errors = 64;
};

/// Parses a log stream; returns the records or the error(s).
/// (A tiny expected<>-style result to stay dependency-free.)
struct ParseResult {
  ParsedLog log;
  /// First error encountered, if any (kept for existing call sites).
  std::optional<ParseError> error;
  /// All collected errors, capped at ParseOptions::max_errors.
  std::vector<ParseError> errors;
  /// Total number of malformed lines seen, including those beyond the cap.
  std::size_t error_count = 0;

  bool ok() const { return !error.has_value(); }
};

ParseResult parse_log(std::istream& is);
ParseResult parse_log(std::istream& is, const ParseOptions& options);

}  // namespace g10::trace
