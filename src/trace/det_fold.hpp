// Folds one engine run's artifacts into a DetSummary (DESIGN.md §14).
//
// Every record an engine emits — phase events, blocking events, monitoring
// samples, final vertex values — is hashed under the phase path (or a
// synthetic stream name) it belongs to. Two runs of the same workload are
// deterministic iff their summaries match; `g10_run --det-check` compares
// them and reports the first divergent phase path.
#pragma once

#include <span>

#include "common/det_hash.hpp"
#include "trace/records.hpp"

namespace g10::trace {

/// Folds a full run into `hasher`: phase/blocking events per phase path,
/// plus the "run/" streams (makespan, comm stats, vertex values).
void fold_run(DetHasher& hasher, const RunArtifacts& artifacts);

/// Folds monitoring samples under "monitor/<resource>/m<machine>" streams
/// (samples are derived after the engine run, so they fold separately).
void fold_samples(DetHasher& hasher,
                  std::span<const MonitoringSampleRecord> samples);

}  // namespace g10::trace
