// The `.g10t` binary columnar trace format (DESIGN.md §16).
//
// A `.g10t` file is a seekable, block-structured serialization of one run's
// trace records — the same phase events, blocking events, and monitoring
// samples the text log carries, re-parseable to the byte-identical record
// stream. The text log is the interchange format; `.g10t` is the analysis
// format: converting once (g10_convert) lets every later `g10_analyze`
// decode only the blocks it needs instead of re-parsing the whole text.
//
// Layout (all integers little-endian; varint = unsigned LEB128,
// zigzag(v) = (v << 1) ^ (v >> 63) for signed values):
//
//   [FileHeader]        fixed 88 bytes, FNV-1a checksummed
//   [symbol table]      varint count, then per symbol varint len + bytes.
//                       Persists the run's SymbolTable: path-element type
//                       names and resource names, referenced by ordinal.
//   [meta section]      varint count, then per record varint-length key and
//                       value (the text format's META lines).
//   [blocks ...]        columnar payloads, one record kind each
//   [block index]       one IndexEntry per block, in file order
//
// Records are blocked in stream order: phase events first, then blocking
// events, then samples — exactly the order write_log() emits — so decoding
// every block in index order reproduces the text log byte for byte.
//
// Each block holds up to `block_records` records of one kind, stored as
// struct-of-arrays columns with per-column lightweight compression:
//   - timestamps: zigzag delta varint (monotonic streams shrink to ~1
//     byte/record);
//   - paths: per-block dictionary of distinct paths (depth + per-element
//     (symbol, zigzag index)), then one varint dictionary ordinal per
//     record;
//   - machines: zigzag varint;
//   - resources: symbol-table ordinal varint;
//   - sample values: raw IEEE-754 bit patterns (8 bytes), so the shortest
//     round-trip text rendering is reproduced exactly;
//   - phase kinds (B/E): one bit per record.
//
// The index entry carries everything seek-by-block filtering needs without
// touching the payload: record kind and count, machine min/max, time
// min/max, and a 64-bit bloom filter over the path-element type names (or
// resource names, for sample blocks). It also carries an FNV-1a hash of the
// encoded payload, so corruption is detected per block — a damaged block
// fails decode cleanly while the rest of the file stays readable.
//
// Versioning rules: the major version in the header bumps on any layout
// change a v1 reader cannot skip; readers refuse newer majors with a clear
// error (never an assert). Unknown header flag bits are an error too —
// flags gate format features, not hints.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/records.hpp"

namespace g10::trace {

inline constexpr char kG10tMagic[8] = {'G', '1', '0', 'T', 'R', 'C', '\r', '\n'};
inline constexpr std::uint32_t kG10tVersion = 1;
/// Bits a v1 reader understands; any other set bit is a hard error.
inline constexpr std::uint32_t kG10tKnownFlags = 0;

inline constexpr std::size_t kG10tHeaderSize = 88;
/// Default records per block. Small enough that a filtered read touching a
/// few blocks decodes little; large enough that varint/delta columns
/// amortize (a 4096-record phase block is typically ~6-10 KiB encoded).
inline constexpr std::size_t kG10tDefaultBlockRecords = 4096;

enum class BlockKind : std::uint8_t {
  kPhase = 0,
  kBlocking = 1,
  kSample = 2,
};

struct FileHeader {
  std::uint32_t version = kG10tVersion;
  std::uint32_t flags = 0;
  std::uint64_t symtab_offset = 0;
  std::uint64_t symtab_size = 0;
  std::uint64_t meta_offset = 0;
  std::uint64_t meta_size = 0;
  std::uint64_t index_offset = 0;
  std::uint64_t index_size = 0;
  std::uint64_t block_count = 0;
  std::uint64_t file_size = 0;  ///< total bytes; truncation is detected early
};

/// Per-block metadata, stored in the index section (never in the payload).
struct IndexEntry {
  BlockKind kind = BlockKind::kPhase;
  std::uint64_t offset = 0;        ///< absolute payload offset
  std::uint64_t encoded_size = 0;  ///< payload bytes
  std::uint64_t record_count = 0;
  MachineId machine_min = 0;
  MachineId machine_max = 0;
  TimeNs time_min = 0;  ///< BLOCK records contribute both begin and end
  TimeNs time_max = 0;
  /// Bloom over path-element type names (phase/blocking) or resource names
  /// (samples); bit fnv1a(name) % 64. Zero record_count blocks store 0.
  std::uint64_t name_bloom = 0;
  std::uint64_t payload_hash = 0;  ///< FNV-1a of the encoded payload
};

/// Bloom bit for one name, matching the writer's hashing.
std::uint64_t name_bloom_bit(std::string_view name);

// --- low-level codec (exposed for tests) ---------------------------------

void put_varint(std::string& out, std::uint64_t value);
void put_zigzag(std::string& out, std::int64_t value);

/// Bounds-checked cursor over an encoded byte range. All reads return false
/// (and leave the cursor valid) on truncation or malformed varints instead
/// of asserting; callers surface the failure as a corrupt-file error.
class ByteCursor {
 public:
  ByteCursor(const char* data, std::size_t size) : data_(data), size_(size) {}
  explicit ByteCursor(std::string_view bytes)
      : ByteCursor(bytes.data(), bytes.size()) {}

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

  bool read_varint(std::uint64_t& out);
  bool read_zigzag(std::int64_t& out);
  bool read_bytes(std::size_t n, std::string_view& out);
  bool read_u32(std::uint32_t& out);
  bool read_u64(std::uint64_t& out);

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Serializes the 88-byte header, including its trailing checksum.
std::string encode_header(const FileHeader& header);

/// Parses and validates a header: magic, checksum, version, flags, and that
/// every section lies inside `file_size` bytes. Returns an error message
/// ("truncated header", "bad magic", ...) instead of a header on failure.
struct HeaderParse {
  FileHeader header;
  std::optional<std::string> error;
  bool ok() const { return !error.has_value(); }
};
HeaderParse decode_header(std::string_view file_prefix,
                          std::uint64_t actual_file_size);

void encode_index_entry(std::string& out, const IndexEntry& entry);
bool decode_index_entry(ByteCursor& cursor, IndexEntry& out);

}  // namespace g10::trace
