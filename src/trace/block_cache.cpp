#include "trace/block_cache.hpp"

#include <algorithm>
#include <bit>

namespace g10::trace {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  return std::bit_ceil(std::max<std::size_t>(n, 1));
}

}  // namespace

namespace {

/// Below this per-shard budget, sharding stops buying concurrency and
/// starts costing memory: every shard retains its most recent entry, so N
/// shards can pin N blocks regardless of budget. Collapse to fewer shards
/// until each one's share is at least a typical decoded block.
constexpr std::size_t kMinShardBudget = std::size_t{64} << 10;

}  // namespace

BlockCache::BlockCache(const Options& options)
    : budget_bytes_(options.budget_bytes) {
  std::size_t shard_count = round_up_pow2(options.shards);
  while (shard_count > 1 && budget_bytes_ / shard_count < kMinShardBudget) {
    shard_count /= 2;
  }
  mask_ = shard_count - 1;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_budget_ = budget_bytes_ / shard_count;
}

std::shared_ptr<const DecodedBlock> BlockCache::get(std::uint64_t key) {
  Shard& shard = shard_of(key);
  MutexLock lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  // Move to the front (most recently used).
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->block;
}

void BlockCache::put(std::uint64_t key,
                     std::shared_ptr<const DecodedBlock> block) {
  if (budget_bytes_ == 0 || block == nullptr) return;
  const std::size_t bytes = block->approx_bytes();
  Shard& shard = shard_of(key);
  MutexLock lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Refresh: same key decoded twice (e.g. prefetch raced the consumer).
    shard.bytes -= it->second->bytes;
    it->second->block = std::move(block);
    it->second->bytes = bytes;
    shard.bytes += bytes;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.push_front(Entry{key, std::move(block), bytes});
    shard.index.emplace(key, shard.lru.begin());
    shard.bytes += bytes;
    ++shard.insertions;
  }
  // Evict from the tail until under budget, but never the entry just
  // touched (size > 1), so put-then-get always hits.
  while (shard.bytes > shard_budget_ && shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

BlockCache::Stats BlockCache::stats() const {
  Stats out;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.insertions += shard->insertions;
    out.evictions += shard->evictions;
    out.resident_bytes += shard->bytes;
    out.resident_blocks += shard->lru.size();
  }
  return out;
}

}  // namespace g10::trace
