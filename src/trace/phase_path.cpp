#include "trace/phase_path.hpp"

#include "common/strings.hpp"

namespace g10::trace {

PhasePath PhasePath::parent() const {
  PhasePath p;
  if (elements.size() > 1) {
    p.elements.assign(elements.begin(), elements.end() - 1);
  }
  return p;
}

PhasePath PhasePath::child(std::string type, std::int64_t index) const {
  PhasePath p = *this;
  p.elements.push_back(PathElement{std::move(type), index});
  return p;
}

std::string PhasePath::to_string() const {
  std::string out;
  append_to(out);
  return out;
}

void PhasePath::append_to(std::string& out) const {
  for (std::size_t i = 0; i < elements.size(); ++i) {
    if (i != 0) out += '/';
    out += elements[i].type;
    out += '.';
    out += std::to_string(elements[i].index);
  }
}

std::optional<PhasePath> parse_phase_path(std::string_view text) {
  if (text.empty()) return std::nullopt;
  PhasePath path;
  for (std::string_view part : split(text, '/')) {
    const std::size_t dot = part.rfind('.');
    if (dot == std::string_view::npos || dot == 0) return std::nullopt;
    const auto index = parse_int(part.substr(dot + 1));
    if (!index || *index < 0) return std::nullopt;
    PathElement element;
    element.type = std::string(part.substr(0, dot));
    element.index = *index;
    if (element.type.empty()) return std::nullopt;
    path.elements.push_back(std::move(element));
  }
  return path;
}

}  // namespace g10::trace
