// Format-independent trace ingestion: text logs and `.g10t` binary traces
// behind one reader interface, with seek-by-block filtering, an LRU block
// cache, and asynchronous decode prefetch (DESIGN.md §16).
//
// TraceReader::open() sniffs the file (the .g10t magic wins over any
// extension) and returns the matching implementation:
//
//  - Text: the file is mapped (or buffered) and handed to the existing
//    chunked zero-copy parser; filters are applied per record after the
//    parse. Byte-for-byte the same results as read_log_file.
//  - Binary: the file is mapped; only the header, symbol table, META
//    section, and block index are touched up front. read() walks the index,
//    skips blocks whose (machine range, time range, path-type bloom) cannot
//    match the filter, and decodes the rest through a byte-budgeted sharded
//    LRU cache — so a warm re-read decodes nothing, and a filtered read
//    touches only relevant blocks. With prefetch enabled, upcoming block
//    decodes run on a ThreadPool and overlap with the consumer appending
//    records downstream.
//
// Both implementations return the same ParseResult shape the text parser
// produces: corrupt binary blocks surface as ParseError entries (with the
// block ordinal in the message), honoring recover/strict semantics — a
// strict read stops at the first corrupt block, a recovering read skips it
// and keeps going. An unfiltered read of a converted trace yields records
// byte-identical (through write_log) to parsing the original text.
//
// Filter semantics (identical for both formats, enforced by tests):
//  - machines: record kept when its machine is listed or is kGlobalMachine
//    (global phases carry the tree structure every analysis needs);
//  - phase_types: phase/blocking records kept when any path element's type
//    is listed (the requested subtrees and everything below them);
//    ancestor_types additionally keep paths whose LAST element's type is
//    listed (the enclosing chain above a requested subtree, without
//    admitting sibling subtrees). Monitoring samples are unaffected.
//    g10_analyze fills ancestor_types from the model's parent links so the
//    filtered slice stays an analyzable tree.
//  - time window: phase events and samples kept when time is inside
//    [time_min, time_max]; blocking events when [begin, end] overlaps it.
//    A time-sliced subset usually truncates phases mid-flight, so analyze
//    such extracts with --lenient.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "trace/block_cache.hpp"
#include "trace/g10t_io.hpp"
#include "trace/log_io.hpp"

namespace g10::trace {

enum class TraceFormat {
  kAuto,    ///< sniff the magic bytes
  kText,
  kBinary,
};

/// Returns the format the sniff resolves `path` to, or an error message
/// (file unreadable).
struct SniffResult {
  TraceFormat format = TraceFormat::kText;
  std::optional<std::string> error;
};
SniffResult sniff_trace_format(const std::string& path);

struct TraceFilter {
  /// Machines to keep; empty = all. kGlobalMachine records always pass.
  std::vector<MachineId> machines;
  /// Phase-type names to keep (any path element matches); empty = all.
  std::vector<std::string> phase_types;
  /// Types whose paths are kept only when the LAST element matches — the
  /// ancestor chain enclosing a requested subtree. Ignored when
  /// phase_types is empty.
  std::vector<std::string> ancestor_types;
  /// Inclusive time window.
  TimeNs time_min = 0;
  TimeNs time_max = std::numeric_limits<TimeNs>::max();

  bool empty() const {
    return machines.empty() && phase_types.empty() && time_min == 0 &&
           time_max == std::numeric_limits<TimeNs>::max();
  }

  bool matches_machine(MachineId machine) const;
  bool matches_path(const PhasePath& path) const;
  bool matches(const PhaseEventRecord& rec) const;
  bool matches(const BlockingEventRecord& rec) const;
  bool matches(const MonitoringSampleRecord& rec) const;
};

struct TraceReadOptions {
  TraceFormat format = TraceFormat::kAuto;
  /// Text-parser semantics, reused for corrupt binary blocks: recover=true
  /// skips damage and keeps going, false stops at the first problem.
  bool recover = false;
  /// Parse / prefetch concurrency (0 = auto via G10_THREADS).
  int threads = 0;
  /// Decoded-byte budget of the binary block cache.
  std::size_t cache_budget_bytes = std::size_t{256} << 20;
  /// Blocks to decode ahead of the consumer (0 = synchronous decode).
  std::size_t prefetch_blocks = 4;
  /// false = buffered read instead of mmap (identity-test knob).
  bool use_mmap = true;
  /// Forwarded to the text parser.
  std::size_t max_errors = 64;
  std::size_t min_chunk_bytes = 1 << 20;
};

struct TraceReadStats {
  bool binary = false;
  std::uint64_t blocks_total = 0;
  std::uint64_t blocks_read = 0;     ///< matched the filter
  std::uint64_t blocks_skipped = 0;  ///< rejected via the index alone
  std::uint64_t blocks_decoded = 0;  ///< actual payload decodes (cache misses)
  std::size_t bytes_mapped = 0;
  BlockCache::Stats cache;
};

class TraceReader {
 public:
  virtual ~TraceReader() = default;

  /// Reads every record matching `filter`, in stream order. Repeated calls
  /// are byte-identical; on a binary reader the second call is warm.
  virtual ParseResult read(const TraceFilter& filter = {}) = 0;

  virtual TraceReadStats stats() const = 0;
  virtual bool is_binary() const = 0;
  virtual const std::string& path() const = 0;

  /// Binary only: the parsed file structure (header, symbols, index);
  /// nullptr for text readers.
  virtual const G10tStructure* structure() const { return nullptr; }

  struct OpenResult {
    std::unique_ptr<TraceReader> reader;
    std::optional<std::string> error;
    bool ok() const { return reader != nullptr; }
  };

  /// Opens `path` in the resolved format. Unreadable files, truncated or
  /// corrupt `.g10t` headers/sections all come back as `error` — never an
  /// assert or exception.
  static OpenResult open(const std::string& path,
                         const TraceReadOptions& options = {});
};

/// One-call convenience: open + read. File-level open errors are reported
/// the way read_log_file does (one ParseError with line_number 0).
ParseResult read_trace_file(const std::string& path,
                            const TraceReadOptions& options = {},
                            const TraceFilter& filter = {});

}  // namespace g10::trace
