#include "trace/log_io.hpp"

#include <sstream>

#include "common/strings.hpp"

namespace g10::trace {

namespace {

std::string format_double(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

void write_phase_event(std::ostream& os, const PhaseEventRecord& rec) {
  os << "PHASE\t" << (rec.kind == PhaseEventRecord::Kind::Begin ? 'B' : 'E')
     << '\t' << rec.path.to_string() << '\t' << rec.time << '\t' << rec.machine
     << '\n';
}

void write_blocking_event(std::ostream& os, const BlockingEventRecord& rec) {
  os << "BLOCK\t" << rec.resource << '\t' << rec.path.to_string() << '\t'
     << rec.begin << '\t' << rec.end << '\t' << rec.machine << '\n';
}

void write_monitoring_sample(std::ostream& os,
                             const MonitoringSampleRecord& rec) {
  os << "SAMPLE\t" << rec.resource << '\t' << rec.machine << '\t' << rec.time
     << '\t' << format_double(rec.value) << '\n';
}

void write_log(std::ostream& os,
               const std::vector<PhaseEventRecord>& phase_events,
               const std::vector<BlockingEventRecord>& blocking_events,
               const std::vector<MonitoringSampleRecord>& samples) {
  os << "# grade10 trace log v1\n";
  for (const auto& rec : phase_events) write_phase_event(os, rec);
  for (const auto& rec : blocking_events) write_blocking_event(os, rec);
  for (const auto& rec : samples) write_monitoring_sample(os, rec);
}

namespace {

std::optional<std::string> parse_phase_line(
    const std::vector<std::string_view>& fields, ParsedLog& out) {
  if (fields.size() != 5) return "PHASE record needs 5 fields";
  PhaseEventRecord rec;
  if (fields[1] == "B") {
    rec.kind = PhaseEventRecord::Kind::Begin;
  } else if (fields[1] == "E") {
    rec.kind = PhaseEventRecord::Kind::End;
  } else {
    return "PHASE kind must be B or E";
  }
  auto path = parse_phase_path(fields[2]);
  if (!path) return "malformed phase path";
  rec.path = std::move(*path);
  const auto time = parse_int(fields[3]);
  if (!time || *time < 0) return "malformed PHASE time";
  rec.time = *time;
  const auto machine = parse_int(fields[4]);
  if (!machine) return "malformed PHASE machine";
  rec.machine = static_cast<MachineId>(*machine);
  out.phase_events.push_back(std::move(rec));
  return std::nullopt;
}

std::optional<std::string> parse_block_line(
    const std::vector<std::string_view>& fields, ParsedLog& out) {
  if (fields.size() != 6) return "BLOCK record needs 6 fields";
  BlockingEventRecord rec;
  rec.resource = std::string(fields[1]);
  if (rec.resource.empty()) return "empty BLOCK resource";
  auto path = parse_phase_path(fields[2]);
  if (!path) return "malformed phase path";
  rec.path = std::move(*path);
  const auto begin = parse_int(fields[3]);
  const auto end = parse_int(fields[4]);
  if (!begin || !end || *begin < 0 || *end < *begin) {
    return "malformed BLOCK interval";
  }
  rec.begin = *begin;
  rec.end = *end;
  const auto machine = parse_int(fields[5]);
  if (!machine) return "malformed BLOCK machine";
  rec.machine = static_cast<MachineId>(*machine);
  out.blocking_events.push_back(std::move(rec));
  return std::nullopt;
}

std::optional<std::string> parse_sample_line(
    const std::vector<std::string_view>& fields, ParsedLog& out) {
  if (fields.size() != 5) return "SAMPLE record needs 5 fields";
  MonitoringSampleRecord rec;
  rec.resource = std::string(fields[1]);
  if (rec.resource.empty()) return "empty SAMPLE resource";
  const auto machine = parse_int(fields[2]);
  if (!machine) return "malformed SAMPLE machine";
  rec.machine = static_cast<MachineId>(*machine);
  const auto time = parse_int(fields[3]);
  if (!time || *time < 0) return "malformed SAMPLE time";
  rec.time = *time;
  const auto value = parse_double(fields[4]);
  if (!value) return "malformed SAMPLE value";
  rec.value = *value;
  out.samples.push_back(std::move(rec));
  return std::nullopt;
}

}  // namespace

ParseResult parse_log(std::istream& is) { return parse_log(is, {}); }

ParseResult parse_log(std::istream& is, const ParseOptions& options) {
  ParseResult result;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto fields = split(trimmed, '\t');
    std::optional<std::string> error;
    if (fields[0] == "PHASE") {
      error = parse_phase_line(fields, result.log);
    } else if (fields[0] == "BLOCK") {
      error = parse_block_line(fields, result.log);
    } else if (fields[0] == "SAMPLE") {
      error = parse_sample_line(fields, result.log);
    } else {
      error = "unknown record type: " + std::string(fields[0]);
    }
    if (error) {
      ++result.error_count;
      ParseError diagnostic{line_number, *error, std::string(trimmed)};
      if (!result.error) result.error = diagnostic;
      if (result.errors.size() < options.max_errors) {
        result.errors.push_back(std::move(diagnostic));
      }
      if (!options.recover) return result;
    }
  }
  return result;
}

}  // namespace g10::trace
