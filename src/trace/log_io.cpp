#include "trace/log_io.hpp"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/strings.hpp"
#include "common/thread_pool.hpp"

namespace g10::trace {

namespace {

/// Shortest round-trip formatting; the writer hot path allocates no stream.
std::string format_double(double v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return ec == std::errc{} ? std::string(buf, ptr) : std::string("0");
}

}  // namespace

void write_phase_event(std::ostream& os, const PhaseEventRecord& rec) {
  os << "PHASE\t" << (rec.kind == PhaseEventRecord::Kind::Begin ? 'B' : 'E')
     << '\t' << rec.path.to_string() << '\t' << rec.time << '\t' << rec.machine
     << '\n';
}

void write_blocking_event(std::ostream& os, const BlockingEventRecord& rec) {
  os << "BLOCK\t" << rec.resource << '\t' << rec.path.to_string() << '\t'
     << rec.begin << '\t' << rec.end << '\t' << rec.machine << '\n';
}

void write_monitoring_sample(std::ostream& os,
                             const MonitoringSampleRecord& rec) {
  os << "SAMPLE\t" << rec.resource << '\t' << rec.machine << '\t' << rec.time
     << '\t' << format_double(rec.value) << '\n';
}

void write_log_meta(std::ostream& os, const LogMeta& meta) {
  os << "META\t" << meta.first << '\t' << meta.second << '\n';
}

void write_log(std::ostream& os,
               const std::vector<PhaseEventRecord>& phase_events,
               const std::vector<BlockingEventRecord>& blocking_events,
               const std::vector<MonitoringSampleRecord>& samples,
               const std::vector<LogMeta>& meta) {
  os << "# grade10 trace log v1\n";
  for (const auto& rec : meta) write_log_meta(os, rec);
  for (const auto& rec : phase_events) write_phase_event(os, rec);
  for (const auto& rec : blocking_events) write_blocking_event(os, rec);
  for (const auto& rec : samples) write_monitoring_sample(os, rec);
}

std::optional<std::string> ParsedLog::meta_value(std::string_view key) const {
  for (const auto& [k, v] : meta) {
    if (k == key) return v;
  }
  return std::nullopt;
}

namespace {

std::optional<std::string> parse_meta_line(
    const std::vector<std::string_view>& fields, ParsedLog& out) {
  if (fields.size() < 3) return "META record needs key and value";
  if (fields[1].empty()) return "empty META key";
  // The value is everything after the second tab (values never contain
  // tabs in practice, but a split-happy reader must not lose data).
  std::string value(fields[2]);
  for (std::size_t i = 3; i < fields.size(); ++i) {
    value += '\t';
    value += fields[i];
  }
  out.meta.emplace_back(std::string(fields[1]), std::move(value));
  return std::nullopt;
}

std::optional<std::string> parse_phase_line(
    const std::vector<std::string_view>& fields, ParsedLog& out) {
  if (fields.size() != 5) return "PHASE record needs 5 fields";
  PhaseEventRecord rec;
  if (fields[1] == "B") {
    rec.kind = PhaseEventRecord::Kind::Begin;
  } else if (fields[1] == "E") {
    rec.kind = PhaseEventRecord::Kind::End;
  } else {
    return "PHASE kind must be B or E";
  }
  auto path = parse_phase_path(fields[2]);
  if (!path) return "malformed phase path";
  rec.path = std::move(*path);
  const auto time = parse_int(fields[3]);
  if (!time || *time < 0) return "malformed PHASE time";
  rec.time = *time;
  const auto machine = parse_int(fields[4]);
  if (!machine) return "malformed PHASE machine";
  rec.machine = static_cast<MachineId>(*machine);
  out.phase_events.push_back(std::move(rec));
  return std::nullopt;
}

std::optional<std::string> parse_block_line(
    const std::vector<std::string_view>& fields, ParsedLog& out) {
  if (fields.size() != 6) return "BLOCK record needs 6 fields";
  BlockingEventRecord rec;
  rec.resource = std::string(fields[1]);
  if (rec.resource.empty()) return "empty BLOCK resource";
  auto path = parse_phase_path(fields[2]);
  if (!path) return "malformed phase path";
  rec.path = std::move(*path);
  const auto begin = parse_int(fields[3]);
  const auto end = parse_int(fields[4]);
  if (!begin || !end || *begin < 0 || *end < *begin) {
    return "malformed BLOCK interval";
  }
  rec.begin = *begin;
  rec.end = *end;
  const auto machine = parse_int(fields[5]);
  if (!machine) return "malformed BLOCK machine";
  rec.machine = static_cast<MachineId>(*machine);
  out.blocking_events.push_back(std::move(rec));
  return std::nullopt;
}

std::optional<std::string> parse_sample_line(
    const std::vector<std::string_view>& fields, ParsedLog& out) {
  if (fields.size() != 5) return "SAMPLE record needs 5 fields";
  MonitoringSampleRecord rec;
  rec.resource = std::string(fields[1]);
  if (rec.resource.empty()) return "empty SAMPLE resource";
  const auto machine = parse_int(fields[2]);
  if (!machine) return "malformed SAMPLE machine";
  rec.machine = static_cast<MachineId>(*machine);
  const auto time = parse_int(fields[3]);
  if (!time || *time < 0) return "malformed SAMPLE time";
  rec.time = *time;
  const auto value = parse_double(fields[4]);
  if (!value) return "malformed SAMPLE value";
  rec.value = *value;
  out.samples.push_back(std::move(rec));
  return std::nullopt;
}

/// One newline-aligned chunk's parse output. Line numbers are local
/// (1-based within the chunk); the merge shifts them by the total line
/// count of the preceding chunks, which reconstructs exact file positions.
struct ChunkResult {
  ParsedLog log;
  std::vector<ParseError> errors;
  std::optional<ParseError> first_error;  ///< kept even when max_errors == 0
  std::size_t error_count = 0;
  std::size_t lines = 0;  ///< lines scanned in this chunk
  bool stopped = false;   ///< strict mode: stopped at the first bad line
};

ChunkResult parse_chunk(std::string_view text, const ParseOptions& options) {
  ChunkResult out;
  std::vector<std::string_view> fields;  // scratch, reused per line
  std::size_t pos = 0;
  std::size_t line_number = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        eol == std::string_view::npos ? text.substr(pos)
                                      : text.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    ++line_number;
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    split_into(trimmed, '\t', fields);
    std::optional<std::string> error;
    if (fields[0] == "PHASE") {
      error = parse_phase_line(fields, out.log);
    } else if (fields[0] == "META") {
      error = parse_meta_line(fields, out.log);
    } else if (fields[0] == "BLOCK") {
      error = parse_block_line(fields, out.log);
    } else if (fields[0] == "SAMPLE") {
      error = parse_sample_line(fields, out.log);
    } else {
      error = "unknown record type: " + std::string(fields[0]);
    }
    if (error) {
      ++out.error_count;
      ParseError diagnostic{line_number, *error, std::string(trimmed)};
      if (!out.first_error) out.first_error = diagnostic;
      if (out.errors.size() < options.max_errors) {
        out.errors.push_back(std::move(diagnostic));
      }
      if (!options.recover) {
        out.stopped = true;
        out.lines = line_number;
        return out;
      }
    }
  }
  out.lines = line_number;
  return out;
}

/// Splits `text` into newline-aligned chunks of roughly size / threads
/// bytes, but never smaller than min_chunk_bytes — tiny inputs parse as a
/// single serial chunk.
std::vector<std::string_view> split_chunks(std::string_view text,
                                           std::size_t threads,
                                           std::size_t min_chunk_bytes) {
  std::vector<std::string_view> chunks;
  const std::size_t target = std::max<std::size_t>(
      std::max<std::size_t>(min_chunk_bytes, 1),
      text.size() / std::max<std::size_t>(threads, 1));
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.size() - pos > target ? pos + target : text.size();
    if (end < text.size()) {
      const std::size_t nl = text.find('\n', end);
      end = nl == std::string_view::npos ? text.size() : nl + 1;
    }
    chunks.push_back(text.substr(pos, end - pos));
    pos = end;
  }
  return chunks;
}

}  // namespace

ParseResult parse_log_text(std::string_view text,
                           const ParseOptions& options) {
  const std::size_t threads = ThreadPool::resolve_threads(
      options.threads > 0 ? static_cast<std::size_t>(options.threads) : 0);
  const std::vector<std::string_view> chunks =
      split_chunks(text, threads, options.min_chunk_bytes);

  std::vector<ChunkResult> parsed(chunks.size());
  if (chunks.size() <= 1 || threads <= 1) {
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      parsed[i] = parse_chunk(chunks[i], options);
    }
  } else {
    ThreadPool pool(ThreadPool::Options{threads, 4096});
    pool.parallel_for(chunks.size(), 1, [&](std::size_t i) {
      parsed[i] = parse_chunk(chunks[i], options);
    });
  }

  // Merge in chunk order: record order, error order, and line numbers all
  // match the serial parse. In strict mode the first failing chunk ends the
  // merge — its partial records are exactly what a serial parse would have
  // produced before stopping (earlier chunks are error-free by definition).
  ParseResult result;
  std::size_t phase_total = 0;
  std::size_t block_total = 0;
  std::size_t sample_total = 0;
  for (const ChunkResult& chunk : parsed) {
    phase_total += chunk.log.phase_events.size();
    block_total += chunk.log.blocking_events.size();
    sample_total += chunk.log.samples.size();
    if (chunk.stopped) break;
  }
  result.log.phase_events.reserve(phase_total);
  result.log.blocking_events.reserve(block_total);
  result.log.samples.reserve(sample_total);

  std::size_t line_offset = 0;
  for (ChunkResult& chunk : parsed) {
    std::move(chunk.log.meta.begin(), chunk.log.meta.end(),
              std::back_inserter(result.log.meta));
    std::move(chunk.log.phase_events.begin(), chunk.log.phase_events.end(),
              std::back_inserter(result.log.phase_events));
    std::move(chunk.log.blocking_events.begin(),
              chunk.log.blocking_events.end(),
              std::back_inserter(result.log.blocking_events));
    std::move(chunk.log.samples.begin(), chunk.log.samples.end(),
              std::back_inserter(result.log.samples));
    for (ParseError& err : chunk.errors) {
      err.line_number += line_offset;
      if (result.errors.size() < options.max_errors) {
        result.errors.push_back(std::move(err));
      }
    }
    result.error_count += chunk.error_count;
    if (chunk.first_error && !result.error) {
      result.error = std::move(chunk.first_error);
      result.error->line_number += line_offset;
    }
    line_offset += chunk.lines;
    if (chunk.stopped) break;
  }
  return result;
}

ParseResult read_log_file(const std::string& path,
                          const ParseOptions& options) {
  errno = 0;
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    // Name the file and the OS reason: a bare "parse failure" on a typo'd
    // path or a permission problem sends people debugging the wrong layer.
    ParseResult result;
    ParseError error{0,
                     "cannot open log file: " + path + ": " +
                         (errno != 0 ? std::strerror(errno) : "open failed"),
                     ""};
    result.error = error;
    result.error_count = 1;
    if (options.max_errors > 0) result.errors.push_back(std::move(error));
    return result;
  }
  file.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(file.tellg());
  file.seekg(0, std::ios::beg);
  std::string text(size, '\0');
  file.read(text.data(), static_cast<std::streamsize>(size));
  return parse_log_text(text, options);
}

ParseResult parse_log(std::istream& is) { return parse_log(is, {}); }

ParseResult parse_log(std::istream& is, const ParseOptions& options) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string text = buffer.str();
  return parse_log_text(text, options);
}

}  // namespace g10::trace
