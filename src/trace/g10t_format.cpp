#include "trace/g10t_format.hpp"

#include <cstring>

#include "common/det_hash.hpp"

namespace g10::trace {

namespace {

void put_u32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

}  // namespace

std::uint64_t name_bloom_bit(std::string_view name) {
  const std::uint64_t hash = fnv1a64(kFnvOffsetBasis, name.data(), name.size());
  return std::uint64_t{1} << (hash % 64);
}

void put_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

void put_zigzag(std::string& out, std::int64_t value) {
  const auto u = static_cast<std::uint64_t>(value);
  put_varint(out, (u << 1) ^ static_cast<std::uint64_t>(value >> 63));
}

bool ByteCursor::read_varint(std::uint64_t& out) {
  std::uint64_t value = 0;
  int shift = 0;
  while (pos_ < size_) {
    const auto byte = static_cast<std::uint8_t>(data_[pos_++]);
    if (shift == 63 && (byte & 0x7e) != 0) return false;  // > 64 bits
    if (shift > 63) return false;
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      out = value;
      return true;
    }
    shift += 7;
  }
  return false;  // truncated varint
}

bool ByteCursor::read_zigzag(std::int64_t& out) {
  std::uint64_t u = 0;
  if (!read_varint(u)) return false;
  out = static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
  return true;
}

bool ByteCursor::read_bytes(std::size_t n, std::string_view& out) {
  if (remaining() < n) return false;
  out = std::string_view(data_ + pos_, n);
  pos_ += n;
  return true;
}

bool ByteCursor::read_u32(std::uint32_t& out) {
  if (remaining() < 4) return false;
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(
                 static_cast<std::uint8_t>(data_[pos_ + i]))
             << (8 * i);
  }
  pos_ += 4;
  out = value;
  return true;
}

bool ByteCursor::read_u64(std::uint64_t& out) {
  if (remaining() < 8) return false;
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(
                 static_cast<std::uint8_t>(data_[pos_ + i]))
             << (8 * i);
  }
  pos_ += 8;
  out = value;
  return true;
}

std::string encode_header(const FileHeader& header) {
  std::string out;
  out.reserve(kG10tHeaderSize);
  out.append(kG10tMagic, sizeof(kG10tMagic));
  put_u32(out, header.version);
  put_u32(out, header.flags);
  put_u64(out, header.symtab_offset);
  put_u64(out, header.symtab_size);
  put_u64(out, header.meta_offset);
  put_u64(out, header.meta_size);
  put_u64(out, header.index_offset);
  put_u64(out, header.index_size);
  put_u64(out, header.block_count);
  put_u64(out, header.file_size);
  const std::uint64_t checksum =
      fnv1a64(kFnvOffsetBasis, out.data(), out.size());
  put_u64(out, checksum);
  return out;
}

HeaderParse decode_header(std::string_view file_prefix,
                          std::uint64_t actual_file_size) {
  HeaderParse out;
  if (file_prefix.size() < kG10tHeaderSize) {
    out.error = "truncated header (" + std::to_string(file_prefix.size()) +
                " of " + std::to_string(kG10tHeaderSize) + " bytes)";
    return out;
  }
  if (std::memcmp(file_prefix.data(), kG10tMagic, sizeof(kG10tMagic)) != 0) {
    out.error = "bad magic (not a .g10t file)";
    return out;
  }
  const std::uint64_t stored_checksum = fnv1a64(
      kFnvOffsetBasis, file_prefix.data(), kG10tHeaderSize - 8);
  ByteCursor cursor(file_prefix.data() + sizeof(kG10tMagic),
                    kG10tHeaderSize - sizeof(kG10tMagic));
  FileHeader& h = out.header;
  std::uint64_t checksum = 0;
  // Reads below cannot fail: the prefix is long enough by the check above.
  cursor.read_u32(h.version);
  cursor.read_u32(h.flags);
  cursor.read_u64(h.symtab_offset);
  cursor.read_u64(h.symtab_size);
  cursor.read_u64(h.meta_offset);
  cursor.read_u64(h.meta_size);
  cursor.read_u64(h.index_offset);
  cursor.read_u64(h.index_size);
  cursor.read_u64(h.block_count);
  cursor.read_u64(h.file_size);
  cursor.read_u64(checksum);
  if (checksum != stored_checksum) {
    out.error = "header checksum mismatch (corrupt header)";
    return out;
  }
  if (h.version > kG10tVersion) {
    out.error = "unsupported .g10t version " + std::to_string(h.version) +
                " (this build reads up to " + std::to_string(kG10tVersion) +
                ")";
    return out;
  }
  if ((h.flags & ~kG10tKnownFlags) != 0) {
    out.error = "unknown .g10t flags " + std::to_string(h.flags);
    return out;
  }
  if (h.file_size != actual_file_size) {
    out.error = "file is " + std::to_string(actual_file_size) +
                " bytes but the header says " + std::to_string(h.file_size) +
                " (truncated or corrupt)";
    return out;
  }
  const auto section_ok = [&](std::uint64_t offset, std::uint64_t size) {
    return offset >= kG10tHeaderSize && offset <= h.file_size &&
           size <= h.file_size - offset;
  };
  if (!section_ok(h.symtab_offset, h.symtab_size) ||
      !section_ok(h.meta_offset, h.meta_size) ||
      !section_ok(h.index_offset, h.index_size)) {
    out.error = "section table points outside the file (corrupt header)";
    return out;
  }
  return out;
}

void encode_index_entry(std::string& out, const IndexEntry& entry) {
  out.push_back(static_cast<char>(entry.kind));
  put_varint(out, entry.offset);
  put_varint(out, entry.encoded_size);
  put_varint(out, entry.record_count);
  put_zigzag(out, entry.machine_min);
  put_zigzag(out, entry.machine_max);
  put_zigzag(out, entry.time_min);
  put_zigzag(out, entry.time_max);
  put_u64(out, entry.name_bloom);
  put_u64(out, entry.payload_hash);
}

bool decode_index_entry(ByteCursor& cursor, IndexEntry& out) {
  std::string_view kind_byte;
  if (!cursor.read_bytes(1, kind_byte)) return false;
  const auto kind = static_cast<std::uint8_t>(kind_byte[0]);
  if (kind > static_cast<std::uint8_t>(BlockKind::kSample)) return false;
  out.kind = static_cast<BlockKind>(kind);
  std::int64_t machine_min = 0;
  std::int64_t machine_max = 0;
  if (!cursor.read_varint(out.offset) ||
      !cursor.read_varint(out.encoded_size) ||
      !cursor.read_varint(out.record_count) ||
      !cursor.read_zigzag(machine_min) || !cursor.read_zigzag(machine_max) ||
      !cursor.read_zigzag(out.time_min) || !cursor.read_zigzag(out.time_max) ||
      !cursor.read_u64(out.name_bloom) || !cursor.read_u64(out.payload_hash)) {
    return false;
  }
  out.machine_min = static_cast<MachineId>(machine_min);
  out.machine_max = static_cast<MachineId>(machine_max);
  return true;
}

}  // namespace g10::trace
