#include "trace/g10t_io.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <fstream>
#include <unordered_map>

#include "common/det_hash.hpp"

namespace g10::trace {

namespace {

void put_u64_raw(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

/// Per-file symbol interning: name -> ordinal in first-use order.
class FileSymbols {
 public:
  std::uint64_t intern(std::string_view name) {
    const auto it = index_.find(name);
    if (it != index_.end()) return it->second;
    // Deque elements never relocate, so views keyed on them stay valid as
    // the table grows (a vector would move SSO strings on reallocation and
    // dangle every stored key).
    names_.emplace_back(name);
    return index_.emplace(names_.back(), names_.size() - 1).first->second;
  }

  const std::deque<std::string>& names() const { return names_; }

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, std::uint64_t, Hash, std::equal_to<>>
      index_;
};

/// Per-block dictionary of distinct phase paths, in first-use order.
class PathDict {
 public:
  std::uint64_t intern(const PhasePath& path) {
    key_.clear();
    path.append_to(key_);
    const auto it = index_.find(key_);
    if (it != index_.end()) return it->second;
    paths_.push_back(&path);
    return index_.emplace(key_, paths_.size() - 1).first->second;
  }

  const std::vector<const PhasePath*>& paths() const { return paths_; }

 private:
  std::string key_;
  std::vector<const PhasePath*> paths_;
  std::unordered_map<std::string, std::uint64_t> index_;
};

void encode_path_dict(std::string& out, const PathDict& dict,
                      FileSymbols& symbols, std::uint64_t& bloom) {
  put_varint(out, dict.paths().size());
  for (const PhasePath* path : dict.paths()) {
    put_varint(out, path->elements.size());
    for (const PathElement& element : path->elements) {
      put_varint(out, symbols.intern(element.type));
      put_zigzag(out, element.index);
      bloom |= name_bloom_bit(element.type);
    }
  }
}

struct EncodedBlock {
  std::string payload;
  IndexEntry entry;
};

template <typename Record>
void fill_common_entry(EncodedBlock& block, const Record* records,
                       std::size_t count) {
  IndexEntry& entry = block.entry;
  entry.record_count = count;
  entry.machine_min = records[0].machine;
  entry.machine_max = records[0].machine;
  for (std::size_t i = 1; i < count; ++i) {
    entry.machine_min = std::min(entry.machine_min, records[i].machine);
    entry.machine_max = std::max(entry.machine_max, records[i].machine);
  }
  entry.encoded_size = block.payload.size();
  entry.payload_hash =
      fnv1a64(kFnvOffsetBasis, block.payload.data(), block.payload.size());
}

EncodedBlock encode_phase_block(const PhaseEventRecord* records,
                                std::size_t count, FileSymbols& symbols) {
  EncodedBlock block;
  block.entry.kind = BlockKind::kPhase;
  std::string& out = block.payload;

  PathDict dict;
  std::vector<std::uint64_t> path_ids(count);
  for (std::size_t i = 0; i < count; ++i) {
    path_ids[i] = dict.intern(records[i].path);
  }
  encode_path_dict(out, dict, symbols, block.entry.name_bloom);
  for (const std::uint64_t id : path_ids) put_varint(out, id);

  for (std::size_t i = 0; i < count; i += 8) {
    std::uint8_t bits = 0;
    for (std::size_t j = i; j < std::min(count, i + 8); ++j) {
      if (records[j].kind == PhaseEventRecord::Kind::End) {
        bits |= static_cast<std::uint8_t>(1u << (j - i));
      }
    }
    out.push_back(static_cast<char>(bits));
  }

  TimeNs previous = 0;
  block.entry.time_min = records[0].time;
  block.entry.time_max = records[0].time;
  for (std::size_t i = 0; i < count; ++i) {
    put_zigzag(out, records[i].time - previous);
    previous = records[i].time;
    block.entry.time_min = std::min(block.entry.time_min, records[i].time);
    block.entry.time_max = std::max(block.entry.time_max, records[i].time);
  }
  for (std::size_t i = 0; i < count; ++i) put_zigzag(out, records[i].machine);

  fill_common_entry(block, records, count);
  return block;
}

EncodedBlock encode_blocking_block(const BlockingEventRecord* records,
                                   std::size_t count, FileSymbols& symbols) {
  EncodedBlock block;
  block.entry.kind = BlockKind::kBlocking;
  std::string& out = block.payload;

  PathDict dict;
  std::vector<std::uint64_t> path_ids(count);
  for (std::size_t i = 0; i < count; ++i) {
    path_ids[i] = dict.intern(records[i].path);
  }
  encode_path_dict(out, dict, symbols, block.entry.name_bloom);
  for (const std::uint64_t id : path_ids) put_varint(out, id);
  for (std::size_t i = 0; i < count; ++i) {
    put_varint(out, symbols.intern(records[i].resource));
  }

  TimeNs previous = 0;
  block.entry.time_min = std::min(records[0].begin, records[0].end);
  block.entry.time_max = std::max(records[0].begin, records[0].end);
  for (std::size_t i = 0; i < count; ++i) {
    put_zigzag(out, records[i].begin - previous);
    previous = records[i].begin;
    put_zigzag(out, records[i].end - records[i].begin);
    block.entry.time_min = std::min(
        block.entry.time_min, std::min(records[i].begin, records[i].end));
    block.entry.time_max = std::max(
        block.entry.time_max, std::max(records[i].begin, records[i].end));
  }
  for (std::size_t i = 0; i < count; ++i) put_zigzag(out, records[i].machine);

  fill_common_entry(block, records, count);
  return block;
}

EncodedBlock encode_sample_block(const MonitoringSampleRecord* records,
                                 std::size_t count, FileSymbols& symbols) {
  EncodedBlock block;
  block.entry.kind = BlockKind::kSample;
  std::string& out = block.payload;

  for (std::size_t i = 0; i < count; ++i) {
    put_varint(out, symbols.intern(records[i].resource));
    block.entry.name_bloom |= name_bloom_bit(records[i].resource);
  }
  for (std::size_t i = 0; i < count; ++i) put_zigzag(out, records[i].machine);

  TimeNs previous = 0;
  block.entry.time_min = records[0].time;
  block.entry.time_max = records[0].time;
  for (std::size_t i = 0; i < count; ++i) {
    put_zigzag(out, records[i].time - previous);
    previous = records[i].time;
    block.entry.time_min = std::min(block.entry.time_min, records[i].time);
    block.entry.time_max = std::max(block.entry.time_max, records[i].time);
  }
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(records[i].value));
    std::memcpy(&bits, &records[i].value, sizeof(bits));
    put_u64_raw(out, bits);
  }

  fill_common_entry(block, records, count);
  return block;
}

template <typename Record, typename Encoder>
void encode_stream(const std::vector<Record>& records,
                   std::size_t block_records, FileSymbols& symbols,
                   Encoder&& encoder, std::vector<EncodedBlock>& out) {
  for (std::size_t start = 0; start < records.size();
       start += block_records) {
    const std::size_t count =
        std::min(block_records, records.size() - start);
    out.push_back(encoder(records.data() + start, count, symbols));
  }
}

// --- decode helpers ------------------------------------------------------

std::optional<std::string> decode_path_dict(
    ByteCursor& cursor, const std::vector<std::string>& symbols,
    std::vector<PhasePath>& dict) {
  std::uint64_t dict_count = 0;
  if (!cursor.read_varint(dict_count)) return "truncated path dictionary";
  if (dict_count > cursor.remaining()) return "path dictionary overruns block";
  dict.reserve(dict_count);
  for (std::uint64_t i = 0; i < dict_count; ++i) {
    std::uint64_t depth = 0;
    if (!cursor.read_varint(depth)) return "truncated path dictionary";
    if (depth > cursor.remaining()) return "path depth overruns block";
    PhasePath path;
    path.elements.reserve(depth);
    for (std::uint64_t d = 0; d < depth; ++d) {
      std::uint64_t symbol = 0;
      std::int64_t index = 0;
      if (!cursor.read_varint(symbol) || !cursor.read_zigzag(index)) {
        return "truncated path element";
      }
      if (symbol >= symbols.size()) {
        return "path element references symbol " + std::to_string(symbol) +
               " of " + std::to_string(symbols.size());
      }
      path.elements.push_back(PathElement{symbols[symbol], index});
    }
    dict.push_back(std::move(path));
  }
  return std::nullopt;
}

std::optional<std::string> decode_phase_block(
    ByteCursor& cursor, std::uint64_t count,
    const std::vector<std::string>& symbols, DecodedBlock& out) {
  std::vector<PhasePath> dict;
  if (auto error = decode_path_dict(cursor, symbols, dict)) return error;

  out.phase_events.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t path_id = 0;
    if (!cursor.read_varint(path_id)) return "truncated path ids";
    if (path_id >= dict.size()) return "path id out of range";
    out.phase_events[i].path = dict[path_id];
  }
  for (std::uint64_t i = 0; i < count; i += 8) {
    std::string_view byte;
    if (!cursor.read_bytes(1, byte)) return "truncated kind bits";
    const auto bits = static_cast<std::uint8_t>(byte[0]);
    for (std::uint64_t j = i; j < std::min(count, i + 8); ++j) {
      out.phase_events[j].kind = (bits >> (j - i)) & 1
                                     ? PhaseEventRecord::Kind::End
                                     : PhaseEventRecord::Kind::Begin;
    }
  }
  TimeNs previous = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::int64_t delta = 0;
    if (!cursor.read_zigzag(delta)) return "truncated time column";
    previous += delta;
    out.phase_events[i].time = previous;
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    std::int64_t machine = 0;
    if (!cursor.read_zigzag(machine)) return "truncated machine column";
    out.phase_events[i].machine = static_cast<MachineId>(machine);
  }
  return std::nullopt;
}

std::optional<std::string> decode_blocking_block(
    ByteCursor& cursor, std::uint64_t count,
    const std::vector<std::string>& symbols, DecodedBlock& out) {
  std::vector<PhasePath> dict;
  if (auto error = decode_path_dict(cursor, symbols, dict)) return error;

  out.blocking_events.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t path_id = 0;
    if (!cursor.read_varint(path_id)) return "truncated path ids";
    if (path_id >= dict.size()) return "path id out of range";
    out.blocking_events[i].path = dict[path_id];
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t symbol = 0;
    if (!cursor.read_varint(symbol)) return "truncated resource column";
    if (symbol >= symbols.size()) return "resource symbol out of range";
    out.blocking_events[i].resource = symbols[symbol];
  }
  TimeNs previous = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::int64_t begin_delta = 0;
    std::int64_t duration = 0;
    if (!cursor.read_zigzag(begin_delta) || !cursor.read_zigzag(duration)) {
      return "truncated interval column";
    }
    previous += begin_delta;
    out.blocking_events[i].begin = previous;
    out.blocking_events[i].end = previous + duration;
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    std::int64_t machine = 0;
    if (!cursor.read_zigzag(machine)) return "truncated machine column";
    out.blocking_events[i].machine = static_cast<MachineId>(machine);
  }
  return std::nullopt;
}

std::optional<std::string> decode_sample_block(
    ByteCursor& cursor, std::uint64_t count,
    const std::vector<std::string>& symbols, DecodedBlock& out) {
  out.samples.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t symbol = 0;
    if (!cursor.read_varint(symbol)) return "truncated resource column";
    if (symbol >= symbols.size()) return "resource symbol out of range";
    out.samples[i].resource = symbols[symbol];
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    std::int64_t machine = 0;
    if (!cursor.read_zigzag(machine)) return "truncated machine column";
    out.samples[i].machine = static_cast<MachineId>(machine);
  }
  TimeNs previous = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::int64_t delta = 0;
    if (!cursor.read_zigzag(delta)) return "truncated time column";
    previous += delta;
    out.samples[i].time = previous;
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t bits = 0;
    if (!cursor.read_u64(bits)) return "truncated value column";
    std::memcpy(&out.samples[i].value, &bits, sizeof(bits));
  }
  return std::nullopt;
}

}  // namespace

void write_g10t(std::ostream& os, const ParsedLog& log,
                const G10tWriteOptions& options) {
  const std::size_t block_records = std::max<std::size_t>(1,
                                                          options.block_records);
  FileSymbols symbols;
  std::vector<EncodedBlock> blocks;
  encode_stream(log.phase_events, block_records, symbols, encode_phase_block,
                blocks);
  encode_stream(log.blocking_events, block_records, symbols,
                encode_blocking_block, blocks);
  encode_stream(log.samples, block_records, symbols, encode_sample_block,
                blocks);

  // The symbol table is finalized only after every block encoded (blocks
  // intern lazily), so sections serialize back to front.
  std::string symtab;
  put_varint(symtab, symbols.names().size());
  for (const std::string& name : symbols.names()) {
    put_varint(symtab, name.size());
    symtab.append(name);
  }

  std::string meta;
  put_varint(meta, log.meta.size());
  for (const auto& [key, value] : log.meta) {
    put_varint(meta, key.size());
    meta.append(key);
    put_varint(meta, value.size());
    meta.append(value);
  }

  FileHeader header;
  header.symtab_offset = kG10tHeaderSize;
  header.symtab_size = symtab.size();
  header.meta_offset = header.symtab_offset + symtab.size();
  header.meta_size = meta.size();
  header.block_count = blocks.size();

  std::uint64_t offset = header.meta_offset + meta.size();
  for (EncodedBlock& block : blocks) {
    block.entry.offset = offset;
    offset += block.payload.size();
  }

  std::string index;
  for (const EncodedBlock& block : blocks) {
    encode_index_entry(index, block.entry);
  }
  header.index_offset = offset;
  header.index_size = index.size();
  header.file_size = offset + index.size();

  const std::string header_bytes = encode_header(header);
  os.write(header_bytes.data(),
           static_cast<std::streamsize>(header_bytes.size()));
  os.write(symtab.data(), static_cast<std::streamsize>(symtab.size()));
  os.write(meta.data(), static_cast<std::streamsize>(meta.size()));
  for (const EncodedBlock& block : blocks) {
    os.write(block.payload.data(),
             static_cast<std::streamsize>(block.payload.size()));
  }
  os.write(index.data(), static_cast<std::streamsize>(index.size()));
}

bool write_g10t_file(const std::string& path, const ParsedLog& log,
                     const G10tWriteOptions& options, std::string* error) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  write_g10t(file, log, options);
  file.flush();
  if (!file) {
    if (error) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

bool looks_like_g10t(std::string_view prefix) {
  return prefix.size() >= sizeof(kG10tMagic) &&
         std::memcmp(prefix.data(), kG10tMagic, sizeof(kG10tMagic)) == 0;
}

G10tStructureParse parse_g10t_structure(std::string_view bytes) {
  G10tStructureParse out;
  HeaderParse header = decode_header(bytes, bytes.size());
  if (!header.ok()) {
    out.error = std::move(header.error);
    return out;
  }
  G10tStructure& structure = out.structure;
  structure.header = header.header;

  {
    ByteCursor cursor(bytes.data() + structure.header.symtab_offset,
                      structure.header.symtab_size);
    std::uint64_t count = 0;
    if (!cursor.read_varint(count) || count > cursor.remaining()) {
      out.error = "corrupt symbol table";
      return out;
    }
    structure.symbols.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      std::uint64_t length = 0;
      std::string_view name;
      if (!cursor.read_varint(length) || !cursor.read_bytes(length, name)) {
        out.error = "corrupt symbol table entry " + std::to_string(i);
        return out;
      }
      structure.symbols.emplace_back(name);
    }
  }

  {
    ByteCursor cursor(bytes.data() + structure.header.meta_offset,
                      structure.header.meta_size);
    std::uint64_t count = 0;
    if (!cursor.read_varint(count) || count > cursor.remaining()) {
      out.error = "corrupt meta section";
      return out;
    }
    structure.meta.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      std::uint64_t key_length = 0;
      std::uint64_t value_length = 0;
      std::string_view key;
      std::string_view value;
      if (!cursor.read_varint(key_length) ||
          !cursor.read_bytes(key_length, key) ||
          !cursor.read_varint(value_length) ||
          !cursor.read_bytes(value_length, value)) {
        out.error = "corrupt meta record " + std::to_string(i);
        return out;
      }
      structure.meta.emplace_back(std::string(key), std::string(value));
    }
  }

  {
    ByteCursor cursor(bytes.data() + structure.header.index_offset,
                      structure.header.index_size);
    structure.index.reserve(structure.header.block_count);
    for (std::uint64_t i = 0; i < structure.header.block_count; ++i) {
      IndexEntry entry;
      if (!decode_index_entry(cursor, entry)) {
        out.error = "corrupt block index entry " + std::to_string(i);
        return out;
      }
      if (entry.offset > bytes.size() ||
          entry.encoded_size > bytes.size() - entry.offset) {
        out.error = "block " + std::to_string(i) + " payload overruns file";
        return out;
      }
      structure.index.push_back(entry);
    }
  }
  return out;
}

std::size_t DecodedBlock::approx_bytes() const {
  std::size_t bytes = sizeof(DecodedBlock);
  for (const PhaseEventRecord& rec : phase_events) {
    bytes += sizeof(rec) + rec.path.elements.size() * sizeof(PathElement);
    for (const PathElement& element : rec.path.elements) {
      bytes += element.type.size();
    }
  }
  for (const BlockingEventRecord& rec : blocking_events) {
    bytes += sizeof(rec) + rec.resource.size() +
             rec.path.elements.size() * sizeof(PathElement);
    for (const PathElement& element : rec.path.elements) {
      bytes += element.type.size();
    }
  }
  for (const MonitoringSampleRecord& rec : samples) {
    bytes += sizeof(rec) + rec.resource.size();
  }
  return bytes;
}

std::optional<std::string> decode_block(
    std::string_view payload, const IndexEntry& entry,
    const std::vector<std::string>& symbols, DecodedBlock& out) {
  if (payload.size() != entry.encoded_size) {
    return "payload size mismatch (" + std::to_string(payload.size()) +
           " vs indexed " + std::to_string(entry.encoded_size) + ")";
  }
  const std::uint64_t hash =
      fnv1a64(kFnvOffsetBasis, payload.data(), payload.size());
  if (hash != entry.payload_hash) {
    return "payload hash mismatch (corrupt block)";
  }
  if (entry.record_count > payload.size()) {
    // Every record costs at least one encoded byte per column; a count
    // above the payload size is corruption, caught before resize() tries
    // to allocate it.
    return "record count exceeds payload size";
  }
  ByteCursor cursor(payload);
  switch (entry.kind) {
    case BlockKind::kPhase:
      return decode_phase_block(cursor, entry.record_count, symbols, out);
    case BlockKind::kBlocking:
      return decode_blocking_block(cursor, entry.record_count, symbols, out);
    case BlockKind::kSample:
      return decode_sample_block(cursor, entry.record_count, symbols, out);
  }
  return "unknown block kind";
}

}  // namespace g10::trace
