// Writing and block-level decoding of `.g10t` files (format in
// g10t_format.hpp, demand-paged reading in trace_reader.hpp).
//
// The writer takes a fully parsed log (the text parser's output — or an
// engine's artifacts assembled into one) and serializes it; the block
// decoder turns one encoded payload back into records. Both are lossless
// for every value the record types can hold: timestamps and machine ids are
// zigzag-coded (negative values survive even though the text parser rejects
// them), and sample values keep their exact IEEE-754 bits, so re-rendering
// a decoded trace through write_log() reproduces the original text log byte
// for byte.
//
// Every decode path is bounds-checked and returns an error string on
// corruption — a damaged file must never assert or read out of bounds
// (the reader is routinely pointed at truncated files from crashed runs).
#pragma once

#include <cstddef>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "trace/g10t_format.hpp"
#include "trace/log_io.hpp"

namespace g10::trace {

struct G10tWriteOptions {
  /// Records per block; the seek granularity. Smaller blocks mean finer
  /// filtering but more index entries and worse compression.
  std::size_t block_records = kG10tDefaultBlockRecords;
};

/// Serializes `log` as a complete `.g10t` stream.
void write_g10t(std::ostream& os, const ParsedLog& log,
                const G10tWriteOptions& options = {});

/// write_g10t to a file; on failure returns false and fills `error`.
bool write_g10t_file(const std::string& path, const ParsedLog& log,
                     const G10tWriteOptions& options, std::string* error);

/// The sniff used by tools and the reader: does this byte prefix (or file)
/// start with the .g10t magic?
bool looks_like_g10t(std::string_view prefix);

/// Parsed file structure: header, persisted symbol table, META records, and
/// the block index — everything except block payloads, which are decoded on
/// demand (decode_block) so a reader touches only the blocks it needs.
struct G10tStructure {
  FileHeader header;
  std::vector<std::string> symbols;
  std::vector<LogMeta> meta;
  std::vector<IndexEntry> index;
};

struct G10tStructureParse {
  G10tStructure structure;
  std::optional<std::string> error;
  bool ok() const { return !error.has_value(); }
};

/// Parses header + sections from the whole file's bytes (typically an mmap
/// view). Never throws; corruption comes back as `error`.
G10tStructureParse parse_g10t_structure(std::string_view bytes);

/// One decoded block's records (only the vector matching the block's kind
/// is populated).
struct DecodedBlock {
  std::vector<PhaseEventRecord> phase_events;
  std::vector<BlockingEventRecord> blocking_events;
  std::vector<MonitoringSampleRecord> samples;

  std::size_t record_count() const {
    return phase_events.size() + blocking_events.size() + samples.size();
  }
  /// Approximate decoded footprint, the block cache's cost metric.
  std::size_t approx_bytes() const;
};

/// Decodes the payload of `entry` (sliced from the file by the caller).
/// Verifies the payload hash first, then every column; returns an error
/// message on any corruption, nullopt on success.
std::optional<std::string> decode_block(std::string_view payload,
                                        const IndexEntry& entry,
                                        const std::vector<std::string>& symbols,
                                        DecodedBlock& out);

}  // namespace g10::trace
