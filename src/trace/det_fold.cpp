#include "trace/det_fold.hpp"

#include <string>

namespace g10::trace {
namespace {

void fold_phase_events(DetHasher& hasher,
                       std::span<const PhaseEventRecord> events,
                       std::string& key) {
  for (const PhaseEventRecord& event : events) {
    key.clear();
    event.path.append_to(key);
    hasher.fold_u64(key, event.kind == PhaseEventRecord::Kind::Begin ? 1 : 2);
    hasher.fold_i64(key, event.time);
    hasher.fold_i64(key, event.machine);
  }
}

void fold_blocking_events(DetHasher& hasher,
                          std::span<const BlockingEventRecord> events,
                          std::string& key) {
  for (const BlockingEventRecord& event : events) {
    key.clear();
    event.path.append_to(key);
    hasher.fold_bytes(key, event.resource);
    hasher.fold_i64(key, event.begin);
    hasher.fold_i64(key, event.end);
    hasher.fold_i64(key, event.machine);
  }
}

}  // namespace

void fold_run(DetHasher& hasher, const RunArtifacts& artifacts) {
  std::string key;
  fold_phase_events(hasher, artifacts.phase_events, key);
  fold_blocking_events(hasher, artifacts.blocking_events, key);
  hasher.fold_i64("run/makespan", artifacts.makespan);
  hasher.fold_double("run/comm", artifacts.comm.remote_bytes_total);
  hasher.fold_i64("run/comm", artifacts.comm.channel_plans);
  hasher.fold_i64("run/comm", artifacts.comm.batch_flushes);
  for (const std::uint64_t messages : artifacts.comm.messages_per_step) {
    hasher.fold_u64("run/comm", messages);
  }
  for (const double value : artifacts.vertex_values) {
    hasher.fold_double("run/vertex_values", value);
  }
}

void fold_samples(DetHasher& hasher,
                  std::span<const MonitoringSampleRecord> samples) {
  std::string key;
  for (const MonitoringSampleRecord& sample : samples) {
    key = "monitor/";
    key += sample.resource;
    key += "/m";
    key += std::to_string(sample.machine);
    hasher.fold_i64(key, sample.time);
    hasher.fold_double(key, sample.value);
  }
}

}  // namespace g10::trace
