#include "trace/trace_reader.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <fstream>
#include <future>
#include <utility>

#include "common/thread_pool.hpp"
#include "trace/mapped_file.hpp"

namespace g10::trace {

namespace {

bool time_window_active(const TraceFilter& f) {
  return f.time_min != 0 || f.time_max != std::numeric_limits<TimeNs>::max();
}

}  // namespace

bool TraceFilter::matches_machine(MachineId machine) const {
  if (machines.empty() || machine == kGlobalMachine) return true;
  return std::find(machines.begin(), machines.end(), machine) !=
         machines.end();
}

bool TraceFilter::matches_path(const PhasePath& path) const {
  if (phase_types.empty()) return true;
  for (const PathElement& element : path.elements) {
    for (const std::string& type : phase_types) {
      if (element.type == type) return true;
    }
  }
  // The enclosing chain: only the innermost element may be an ancestor
  // type, otherwise sibling subtrees under a shared ancestor would leak in.
  if (!path.elements.empty()) {
    const std::string& last = path.elements.back().type;
    for (const std::string& type : ancestor_types) {
      if (last == type) return true;
    }
  }
  return false;
}

bool TraceFilter::matches(const PhaseEventRecord& rec) const {
  return rec.time >= time_min && rec.time <= time_max &&
         matches_machine(rec.machine) && matches_path(rec.path);
}

bool TraceFilter::matches(const BlockingEventRecord& rec) const {
  return rec.end >= time_min && rec.begin <= time_max &&
         matches_machine(rec.machine) && matches_path(rec.path);
}

bool TraceFilter::matches(const MonitoringSampleRecord& rec) const {
  return rec.time >= time_min && rec.time <= time_max &&
         matches_machine(rec.machine);
}

SniffResult sniff_trace_format(const std::string& path) {
  SniffResult out;
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    out.error = "cannot open " + path;
    return out;
  }
  char prefix[sizeof(kG10tMagic)] = {};
  file.read(prefix, sizeof(prefix));
  const auto got = static_cast<std::size_t>(file.gcount());
  out.format = looks_like_g10t(std::string_view(prefix, got))
                   ? TraceFormat::kBinary
                   : TraceFormat::kText;
  return out;
}

namespace {

void filter_log(const TraceFilter& filter, ParsedLog& log) {
  if (filter.empty()) return;
  std::erase_if(log.phase_events, [&](const PhaseEventRecord& rec) {
    return !filter.matches(rec);
  });
  std::erase_if(log.blocking_events, [&](const BlockingEventRecord& rec) {
    return !filter.matches(rec);
  });
  std::erase_if(log.samples, [&](const MonitoringSampleRecord& rec) {
    return !filter.matches(rec);
  });
}

// --- text ---------------------------------------------------------------

class TextTraceReader final : public TraceReader {
 public:
  TextTraceReader(std::string path, MappedFile file, TraceReadOptions options)
      : path_(std::move(path)),
        file_(std::move(file)),
        options_(std::move(options)) {}

  ParseResult read(const TraceFilter& filter) override {
    ParseOptions parse_options;
    parse_options.recover = options_.recover;
    parse_options.max_errors = options_.max_errors;
    parse_options.threads = options_.threads;
    parse_options.min_chunk_bytes = options_.min_chunk_bytes;
    ParseResult result = parse_log_text(file_.bytes(), parse_options);
    filter_log(filter, result.log);
    return result;
  }

  TraceReadStats stats() const override {
    TraceReadStats out;
    out.binary = false;
    out.bytes_mapped = file_.size();
    return out;
  }

  bool is_binary() const override { return false; }
  const std::string& path() const override { return path_; }

 private:
  std::string path_;
  MappedFile file_;
  TraceReadOptions options_;
};

// --- binary -------------------------------------------------------------

struct DecodeOutcome {
  std::shared_ptr<const DecodedBlock> block;
  std::string error;  ///< empty = success
};

class BinaryTraceReader final : public TraceReader {
 public:
  BinaryTraceReader(std::string path, MappedFile file, G10tStructure structure,
                    TraceReadOptions options)
      : path_(std::move(path)),
        file_(std::move(file)),
        structure_(std::move(structure)),
        options_(std::move(options)),
        cache_(BlockCache::Options{options_.cache_budget_bytes, 8}) {}

  ParseResult read(const TraceFilter& filter) override;

  TraceReadStats stats() const override {
    TraceReadStats out;
    out.binary = true;
    out.blocks_total = structure_.index.size();
    out.blocks_read = blocks_read_.load(std::memory_order_relaxed);
    out.blocks_skipped = blocks_skipped_.load(std::memory_order_relaxed);
    out.blocks_decoded = blocks_decoded_.load(std::memory_order_relaxed);
    out.bytes_mapped = file_.size();
    out.cache = cache_.stats();
    return out;
  }

  bool is_binary() const override { return true; }
  const std::string& path() const override { return path_; }
  const G10tStructure* structure() const override { return &structure_; }

 private:
  /// Do filter + index entry admit any record overlap? Conservative: a
  /// true may still yield zero records, a false never loses one.
  bool block_matches(const TraceFilter& filter,
                     const std::vector<std::uint64_t>& filter_blooms,
                     const IndexEntry& entry) const {
    if (entry.record_count == 0) return false;
    if (entry.time_max < filter.time_min || entry.time_min > filter.time_max) {
      return false;
    }
    if (!filter.machines.empty()) {
      bool any = entry.machine_min <= kGlobalMachine &&
                 kGlobalMachine <= entry.machine_max;
      for (const MachineId machine : filter.machines) {
        if (any) break;
        any = entry.machine_min <= machine && machine <= entry.machine_max;
      }
      if (!any) return false;
    }
    if (!filter_blooms.empty() && entry.kind != BlockKind::kSample) {
      bool any = false;
      for (const std::uint64_t bit : filter_blooms) {
        if ((entry.name_bloom & bit) != 0) {
          any = true;
          break;
        }
      }
      if (!any) return false;
    }
    return true;
  }

  DecodeOutcome decode_one(std::size_t ordinal) {
    const IndexEntry& entry = structure_.index[ordinal];
    DecodeOutcome outcome;
    const std::string_view payload =
        file_.bytes().substr(entry.offset, entry.encoded_size);
    auto block = std::make_shared<DecodedBlock>();
    try {
      if (auto error = decode_block(payload, entry, structure_.symbols,
                                    *block)) {
        outcome.error =
            "block " + std::to_string(ordinal) + ": " + *error;
        return outcome;
      }
    } catch (const std::exception& e) {
      outcome.error =
          "block " + std::to_string(ordinal) + ": decode failed: " + e.what();
      return outcome;
    }
    blocks_decoded_.fetch_add(1, std::memory_order_relaxed);
    outcome.block = std::move(block);
    cache_.put(ordinal, outcome.block);
    return outcome;
  }

  std::string path_;
  MappedFile file_;
  G10tStructure structure_;
  TraceReadOptions options_;
  BlockCache cache_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<std::uint64_t> blocks_read_{0};
  std::atomic<std::uint64_t> blocks_skipped_{0};
  std::atomic<std::uint64_t> blocks_decoded_{0};
};

ParseResult BinaryTraceReader::read(const TraceFilter& filter) {
  ParseResult result;
  result.log.meta = structure_.meta;

  // Seek: reject blocks via the index alone.
  std::vector<std::uint64_t> filter_blooms;
  if (!filter.phase_types.empty()) {
    filter_blooms.reserve(filter.phase_types.size() +
                          filter.ancestor_types.size());
    for (const std::string& type : filter.phase_types) {
      filter_blooms.push_back(name_bloom_bit(type));
    }
    for (const std::string& type : filter.ancestor_types) {
      filter_blooms.push_back(name_bloom_bit(type));
    }
  }
  std::vector<std::size_t> selected;
  selected.reserve(structure_.index.size());
  for (std::size_t i = 0; i < structure_.index.size(); ++i) {
    if (block_matches(filter, filter_blooms, structure_.index[i])) {
      selected.push_back(i);
    } else {
      blocks_skipped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  blocks_read_.fetch_add(selected.size(), std::memory_order_relaxed);

  // Async prefetch: keep the next few blocks decoding on the pool while
  // the consumer appends the current one downstream.
  const std::size_t pool_threads =
      ThreadPool::resolve_threads(options_.threads > 0
                                      ? static_cast<std::size_t>(
                                            options_.threads)
                                      : 0);
  const std::size_t prefetch_depth =
      pool_threads > 1 ? options_.prefetch_blocks : 0;
  if (prefetch_depth > 0 && pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(
        ThreadPool::Options{pool_threads, 4096});
  }

  struct InFlight {
    std::size_t ordinal = 0;
    std::future<DecodeOutcome> future;
  };
  std::deque<InFlight> in_flight;
  std::size_t next_prefetch = 0;  // index into `selected`

  const auto drain = [&] {
    for (InFlight& flight : in_flight) flight.future.wait();
    in_flight.clear();
  };

  const bool record_filter_active = !filter.machines.empty() ||
                                    !filter.phase_types.empty() ||
                                    time_window_active(filter);

  for (std::size_t k = 0; k < selected.size(); ++k) {
    if (prefetch_depth > 0) {
      if (next_prefetch <= k) next_prefetch = k + 1;
      while (next_prefetch < selected.size() &&
             in_flight.size() < prefetch_depth) {
        const std::size_t ordinal = selected[next_prefetch++];
        const IndexEntry& entry = structure_.index[ordinal];
        file_.advise_will_need(entry.offset, entry.encoded_size);
        auto promise = std::make_shared<std::promise<DecodeOutcome>>();
        InFlight flight;
        flight.ordinal = ordinal;
        flight.future = promise->get_future();
        in_flight.push_back(std::move(flight));
        pool_->submit([this, ordinal, promise] {
          if (auto cached = cache_.get(ordinal)) {
            promise->set_value(DecodeOutcome{std::move(cached), {}});
            return;
          }
          promise->set_value(decode_one(ordinal));
        });
      }
    }

    const std::size_t ordinal = selected[k];
    DecodeOutcome outcome;
    if (!in_flight.empty() && in_flight.front().ordinal == ordinal) {
      outcome = in_flight.front().future.get();
      in_flight.pop_front();
    } else if (auto cached = cache_.get(ordinal)) {
      outcome.block = std::move(cached);
    } else {
      outcome = decode_one(ordinal);
    }

    if (!outcome.error.empty()) {
      // Corrupt block: 1-based block ordinal in the "line" slot so strict
      // and lenient consumers treat it like a damaged line, while
      // file-level failures keep line 0.
      ++result.error_count;
      ParseError diagnostic{ordinal + 1, outcome.error, ""};
      if (!result.error) result.error = diagnostic;
      if (result.errors.size() < options_.max_errors) {
        result.errors.push_back(std::move(diagnostic));
      }
      if (!options_.recover) {
        drain();
        return result;
      }
      continue;
    }

    const DecodedBlock& block = *outcome.block;
    if (!record_filter_active) {
      result.log.phase_events.insert(result.log.phase_events.end(),
                                     block.phase_events.begin(),
                                     block.phase_events.end());
      result.log.blocking_events.insert(result.log.blocking_events.end(),
                                        block.blocking_events.begin(),
                                        block.blocking_events.end());
      result.log.samples.insert(result.log.samples.end(),
                                block.samples.begin(), block.samples.end());
      continue;
    }
    for (const PhaseEventRecord& rec : block.phase_events) {
      if (filter.matches(rec)) result.log.phase_events.push_back(rec);
    }
    for (const BlockingEventRecord& rec : block.blocking_events) {
      if (filter.matches(rec)) result.log.blocking_events.push_back(rec);
    }
    for (const MonitoringSampleRecord& rec : block.samples) {
      if (filter.matches(rec)) result.log.samples.push_back(rec);
    }
  }
  drain();
  return result;
}

}  // namespace

TraceReader::OpenResult TraceReader::open(const std::string& path,
                                          const TraceReadOptions& options) {
  OpenResult out;
  MappedFile file;
  if (auto error =
          MappedFile::open(path, MappedFile::Options{options.use_mmap},
                           file)) {
    out.error = std::move(*error);
    return out;
  }

  TraceFormat format = options.format;
  if (format == TraceFormat::kAuto) {
    format = looks_like_g10t(file.bytes()) ? TraceFormat::kBinary
                                           : TraceFormat::kText;
  }
  if (format == TraceFormat::kText) {
    out.reader = std::make_unique<TextTraceReader>(path, std::move(file),
                                                   options);
    return out;
  }

  G10tStructureParse structure = parse_g10t_structure(file.bytes());
  if (!structure.ok()) {
    out.error = path + ": " + *structure.error;
    return out;
  }
  out.reader = std::make_unique<BinaryTraceReader>(
      path, std::move(file), std::move(structure.structure), options);
  return out;
}

ParseResult read_trace_file(const std::string& path,
                            const TraceReadOptions& options,
                            const TraceFilter& filter) {
  TraceReader::OpenResult opened = TraceReader::open(path, options);
  if (!opened.ok()) {
    ParseResult result;
    ParseError error{0, *opened.error, ""};
    result.error = error;
    result.error_count = 1;
    if (options.max_errors > 0) result.errors.push_back(std::move(error));
    return result;
  }
  return opened.reader->read(filter);
}

}  // namespace g10::trace
