// The on-disk record types exchanged between the system under test and
// Grade10 (paper §III-C): execution-log phase events, blocking events, and
// periodic monitoring samples. Engines produce these; the Grade10 trace
// builders consume them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/step_function.hpp"
#include "common/time.hpp"
#include "trace/phase_path.hpp"

namespace g10::trace {

/// Id of the machine a record pertains to; kGlobalMachine for cluster-wide
/// phases (e.g. the job root or a global barrier).
using MachineId = std::int32_t;
inline constexpr MachineId kGlobalMachine = -1;

/// A phase started or ended (from the SUT's execution logs).
struct PhaseEventRecord {
  enum class Kind { Begin, End };
  Kind kind = Kind::Begin;
  PhasePath path;
  TimeNs time = 0;
  MachineId machine = kGlobalMachine;
};

/// A phase was blocked on a blocking resource for [begin, end).
struct BlockingEventRecord {
  std::string resource;  ///< blocking-resource name, e.g. "GC"
  PhasePath path;        ///< the blocked phase instance
  TimeNs begin = 0;
  TimeNs end = 0;
  MachineId machine = kGlobalMachine;
};

/// One periodic monitoring sample: the average consumption rate of
/// `resource` on `machine` over (previous sample time, time].
struct MonitoringSampleRecord {
  std::string resource;
  MachineId machine = kGlobalMachine;
  TimeNs time = 0;   ///< end of the measurement window
  double value = 0;  ///< average rate in the resource's units
};

/// Perfect per-resource usage signal from the simulator. Not visible to
/// Grade10 in a normal run — the monitor samples it — but kept so the
/// Table II experiment can compare against ground truth.
struct GroundTruthSeries {
  std::string resource;
  MachineId machine = kGlobalMachine;
  double capacity = 0;
  StepFunction series;
};

/// Aggregate communication behavior of a run. The counts and byte totals
/// are *logical* workload invariants — tallied where messages are produced,
/// before any coalescing, retransmission, or loss — so they must come out
/// identical whether communication batching is on or off and regardless of
/// injected message loss. The plan/flush counters, by contrast, describe
/// the transport and are exactly what batching is meant to shrink.
struct CommStats {
  /// Messages produced per executed superstep/iteration *instance* (an
  /// attempt aborted by a crash records nothing; its re-execution does).
  std::vector<std::uint64_t> messages_per_step;
  double remote_bytes_total = 0.0;  ///< logical remote wire bytes
  std::int64_t channel_plans = 0;   ///< ReliableChannel::plan_send calls
  std::int64_t batch_flushes = 0;   ///< coalesced NIC handoffs (0 when off)
};

/// Everything one engine run produces.
struct RunArtifacts {
  std::vector<PhaseEventRecord> phase_events;
  std::vector<BlockingEventRecord> blocking_events;
  std::vector<GroundTruthSeries> ground_truth;
  TimeNs makespan = 0;
  CommStats comm;

  /// Final per-vertex algorithm values, for correctness validation.
  std::vector<double> vertex_values;

  const GroundTruthSeries* find_ground_truth(const std::string& resource,
                                             MachineId machine) const;
};

inline const GroundTruthSeries* RunArtifacts::find_ground_truth(
    const std::string& resource, MachineId machine) const {
  for (const auto& series : ground_truth) {
    if (series.resource == resource && series.machine == machine) {
      return &series;
    }
  }
  return nullptr;
}

}  // namespace g10::trace
