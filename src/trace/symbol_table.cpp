#include "trace/symbol_table.hpp"

#include <limits>

namespace g10::trace {

namespace {

// FNV-1a style combine over (type, index) pairs. In-process only: symbol
// values depend on intern order, so these hashes must never be persisted
// or compared across runs.
constexpr std::size_t kFnvPrime = 0x100000001b3ull;

std::size_t combine(std::size_t hash, std::uint64_t value) {
  hash ^= value;
  hash *= kFnvPrime;
  return hash;
}

std::size_t combine_entry(std::size_t hash, const PathEntry& entry) {
  hash = combine(hash, entry.type);
  hash = combine(hash, static_cast<std::uint64_t>(entry.index));
  return hash;
}

}  // namespace

SymbolTable& SymbolTable::global() {
  static SymbolTable* table = new SymbolTable();  // never destroyed
  return *table;
}

Symbol SymbolTable::intern(std::string_view name) {
  MutexLock lock(mutex_);
  const auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  G10_CHECK(names_.size() < std::numeric_limits<Symbol>::max());
  const auto symbol = static_cast<Symbol>(names_.size());
  names_.emplace_back(name);
  index_.emplace(std::string_view(names_.back()), symbol);
  return symbol;
}

std::string_view SymbolTable::name(Symbol symbol) const {
  MutexLock lock(mutex_);
  G10_CHECK_MSG(symbol < names_.size(), "unknown symbol: " << symbol);
  // Deque storage is stable: the view outlives the lock.
  return names_[symbol];
}

std::size_t SymbolTable::size() const {
  MutexLock lock(mutex_);
  return names_.size();
}

void PathRef::push(Symbol type, std::int64_t index) {
  const PathEntry entry{type, index};
  if (size_ < kInlineCapacity) {
    inline_[size_] = entry;
  } else {
    if (size_ == kInlineCapacity) {
      overflow_.assign(inline_, inline_ + kInlineCapacity);
    }
    overflow_.push_back(entry);
  }
  ++size_;
  hash_ = combine_entry(hash_, entry);
}

PathRef PathRef::child(Symbol type, std::int64_t index) const {
  PathRef result = *this;
  result.push(type, index);
  return result;
}

PathRef PathRef::parent() const {
  PathRef result;
  if (size_ > 1) {
    for (std::size_t i = 0; i + 1 < size_; ++i) {
      result.push(data()[i].type, data()[i].index);
    }
  }
  return result;
}

PhasePath PathRef::to_phase_path() const {
  const SymbolTable& table = SymbolTable::global();
  PhasePath path;
  path.elements.reserve(size_);
  for (const PathEntry& entry : *this) {
    path.elements.push_back(
        PathElement{std::string(table.name(entry.type)), entry.index});
  }
  return path;
}

std::string PathRef::to_string() const {
  std::string out;
  append_to(out);
  return out;
}

void PathRef::append_to(std::string& out) const {
  const SymbolTable& table = SymbolTable::global();
  for (std::size_t i = 0; i < size_; ++i) {
    if (i != 0) out += '/';
    out += table.name(data()[i].type);
    out += '.';
    out += std::to_string(data()[i].index);
  }
}

PathRef PathRef::from_phase_path(const PhasePath& path) {
  SymbolTable& table = SymbolTable::global();
  PathRef result;
  for (const PathElement& element : path.elements) {
    result.push(table.intern(element.type), element.index);
  }
  return result;
}

}  // namespace g10::trace
