// Micro-benchmarks of the simulation substrate: the discrete-event kernel
// (schedule/run and schedule/cancel throughput, which bounds how fast the
// engines can generate traces) and the trace-replay simulator (§III-F,
// which bounds how many candidate performance issues Grade10 can evaluate
// per second).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>

#include "algorithms/programs.hpp"
#include "engine/pregel/pregel_engine.hpp"
#include "grade10/issues/replay_simulator.hpp"
#include "grade10/models/pregel_model.hpp"
#include "graph/generators.hpp"
#include "sim/simulation.hpp"

namespace g10::sim {
namespace {

// Capture shape representative of the engines' events: an owner pointer
// plus a few scalar fields (worker/thread ids, a time, an intensity).
struct KernelFixture {
  Simulation sim;
  std::uint64_t fired = 0;
  double accum = 0.0;
};

void BM_KernelScheduleRun(benchmark::State& state) {
  const auto events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    KernelFixture fx;
    for (int i = 0; i < events; ++i) {
      const int w = i & 7;
      const double intensity = 0.5 + 0.001 * static_cast<double>(w);
      fx.sim.schedule_at(static_cast<TimeNs>(i % 97) * 10 + w,
                         [&fx, w, intensity] {
                           ++fx.fired;
                           fx.accum += intensity * static_cast<double>(w);
                         });
    }
    fx.sim.run();
    benchmark::DoNotOptimize(fx.fired);
    benchmark::DoNotOptimize(fx.accum);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_KernelScheduleRun)->Arg(1 << 12)->Arg(1 << 16);

// Events reschedule their successors from inside callbacks (the engines'
// dominant pattern: thread_continue -> finish_chunk -> thread_continue).
// The capture mirrors an engine continuation — owner pointer, remaining
// budget, worker id, intensity — ~32 bytes, larger than std::function's
// inline buffer.
void cascade_step(KernelFixture* fx, std::uint64_t remaining, int worker,
                  double intensity) {
  ++fx->fired;
  fx->accum += intensity;
  if (remaining > 0) {
    fx->sim.schedule_after(5, [fx, remaining, worker, intensity] {
      cascade_step(fx, remaining - 1, worker ^ 1, intensity);
    });
  }
}

void BM_KernelCascade(benchmark::State& state) {
  const auto events = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    KernelFixture fx;
    fx.sim.schedule_at(0, [&fx, events] {
      cascade_step(&fx, events - 1, 0, 0.75);
    });
    fx.sim.run();
    benchmark::DoNotOptimize(fx.fired);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_KernelCascade)->Arg(1 << 12)->Arg(1 << 16);

// Heartbeat-style timer churn: every timer is armed and then cancelled
// before it can fire (the failure_detector / reliable_channel pattern).
void BM_KernelScheduleCancel(benchmark::State& state) {
  const auto timers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    KernelFixture fx;
    for (int i = 0; i < timers; ++i) {
      const EventId timeout =
          fx.sim.schedule_at(1000 + i, [&fx] { ++fx.fired; });
      if (i % 16 != 0) fx.sim.cancel(timeout);
    }
    fx.sim.run();
    benchmark::DoNotOptimize(fx.fired);
  }
  state.SetItemsProcessed(state.iterations() * timers);
}
BENCHMARK(BM_KernelScheduleCancel)->Arg(1 << 12)->Arg(1 << 14);

}  // namespace
}  // namespace g10::sim

namespace g10::core {
namespace {

struct Fixture {
  trace::RunArtifacts artifacts;
  FrameworkModel model;
  std::unique_ptr<ExecutionTrace> trace;

  explicit Fixture(int scale) {
    graph::RmatParams params;
    params.scale = scale;
    params.edge_factor = 8;
    params.seed = 5;
    const auto graph = generate_rmat(params);
    engine::PregelConfig cfg;
    cfg.cluster.machine_count = 4;
    cfg.cluster.machine.cores = 8;
    artifacts =
        engine::PregelEngine(cfg).run(graph, algorithms::PageRank(10));
    PregelModelParams model_params;
    model_params.cores = 8;
    model_params.threads = 8;
    model = make_pregel_model(model_params);
    trace = std::make_unique<ExecutionTrace>(ExecutionTrace::build(
        model.execution, model.resources, artifacts.phase_events,
        artifacts.blocking_events));
  }
};

void BM_ReplaySimulate(benchmark::State& state) {
  const Fixture fixture(static_cast<int>(state.range(0)));
  const ReplaySimulator sim(fixture.model.execution, *fixture.trace);
  const auto durations = sim.recorded_durations();
  for (auto _ : state) {
    auto schedule = sim.simulate(durations);
    benchmark::DoNotOptimize(schedule);
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(fixture.trace->instances().size()));
  state.counters["instances"] =
      static_cast<double>(fixture.trace->instances().size());
}
BENCHMARK(BM_ReplaySimulate)->Arg(10)->Arg(12)->Arg(14);

void BM_SimulatorConstruction(benchmark::State& state) {
  const Fixture fixture(12);
  for (auto _ : state) {
    ReplaySimulator sim(fixture.model.execution, *fixture.trace);
    benchmark::DoNotOptimize(sim);
  }
}
BENCHMARK(BM_SimulatorConstruction);

}  // namespace
}  // namespace g10::core

BENCHMARK_MAIN();
