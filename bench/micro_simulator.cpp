// Micro-benchmarks of the trace-replay simulator (§III-F): makespan
// re-simulation throughput, which bounds how many candidate performance
// issues Grade10 can evaluate per second.
#include <benchmark/benchmark.h>

#include "algorithms/programs.hpp"
#include "engine/pregel/pregel_engine.hpp"
#include "grade10/issues/replay_simulator.hpp"
#include "grade10/models/pregel_model.hpp"
#include "graph/generators.hpp"

namespace g10::core {
namespace {

struct Fixture {
  trace::RunArtifacts artifacts;
  FrameworkModel model;
  std::unique_ptr<ExecutionTrace> trace;

  explicit Fixture(int scale) {
    graph::RmatParams params;
    params.scale = scale;
    params.edge_factor = 8;
    params.seed = 5;
    const auto graph = generate_rmat(params);
    engine::PregelConfig cfg;
    cfg.cluster.machine_count = 4;
    cfg.cluster.machine.cores = 8;
    artifacts =
        engine::PregelEngine(cfg).run(graph, algorithms::PageRank(10));
    PregelModelParams model_params;
    model_params.cores = 8;
    model_params.threads = 8;
    model = make_pregel_model(model_params);
    trace = std::make_unique<ExecutionTrace>(ExecutionTrace::build(
        model.execution, model.resources, artifacts.phase_events,
        artifacts.blocking_events));
  }
};

void BM_ReplaySimulate(benchmark::State& state) {
  const Fixture fixture(static_cast<int>(state.range(0)));
  const ReplaySimulator sim(fixture.model.execution, *fixture.trace);
  const auto durations = sim.recorded_durations();
  for (auto _ : state) {
    auto schedule = sim.simulate(durations);
    benchmark::DoNotOptimize(schedule);
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(fixture.trace->instances().size()));
  state.counters["instances"] =
      static_cast<double>(fixture.trace->instances().size());
}
BENCHMARK(BM_ReplaySimulate)->Arg(10)->Arg(12)->Arg(14);

void BM_SimulatorConstruction(benchmark::State& state) {
  const Fixture fixture(12);
  for (auto _ : state) {
    ReplaySimulator sim(fixture.model.execution, *fixture.trace);
    benchmark::DoNotOptimize(sim);
  }
}
BENCHMARK(BM_SimulatorConstruction);

}  // namespace
}  // namespace g10::core

BENCHMARK_MAIN();
