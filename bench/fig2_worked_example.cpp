// Figure 2 (paper §III-D): the worked resource-attribution example.
//
// Reconstructs the concrete instance documented in DESIGN.md §4, runs the
// full attribution pipeline on it, and prints the figure's matrices:
//   (a) execution trace, (b) attribution rules, (c) demand estimation,
//   (d) coarse monitoring data, (e) upsampled consumption,
//   (f) per-phase attribution,
// followed by the §III-E bottleneck classifications. The numeric anchors of
// the running text (15%/65% upsampling split, 50%/15% attribution at the
// third timeslice) are asserted at the end.
#include <iostream>

#include "common/check.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "grade10/pipeline.hpp"

namespace g10 {
namespace {

using namespace g10::core;

trace::PhasePath path_of(const std::string& text) {
  return *trace::parse_phase_path(text);
}

void add_phase(std::vector<trace::PhaseEventRecord>& events,
               const std::string& path, TimeNs begin, TimeNs end) {
  events.push_back(
      {trace::PhaseEventRecord::Kind::Begin, path_of(path), begin, 0});
  events.push_back(
      {trace::PhaseEventRecord::Kind::End, path_of(path), end, 0});
}

int run() {
  ExecutionModel execution;
  const PhaseTypeId root = execution.add_root("Workload");
  const PhaseTypeId p1 = execution.add_child(root, "P1");
  const PhaseTypeId p2 = execution.add_child(root, "P2");
  const PhaseTypeId p3 = execution.add_child(root, "P3");
  const PhaseTypeId p4 = execution.add_child(root, "P4");
  ResourceModel resources;
  const ResourceId r1 = resources.add_consumable("R1", 100.0);
  const ResourceId r2 = resources.add_consumable("R2", 100.0);
  const ResourceId r3 = resources.add_consumable("R3", 100.0);

  AttributionRuleSet rules(AttributionRule::none());
  rules.set(p1, r1, AttributionRule::variable(1.0));
  rules.set(p2, r1, AttributionRule::variable(2.0));
  rules.set(p2, r2, AttributionRule::variable(1.0));
  rules.set(p2, r3, AttributionRule::exact(80.0));
  rules.set(p3, r2, AttributionRule::exact(50.0));
  rules.set(p3, r3, AttributionRule::variable(1.0));
  rules.set(p4, r1, AttributionRule::variable(1.0));

  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Workload.0", 0, 60);
  add_phase(events, "Workload.0/P1.0", 0, 20);
  add_phase(events, "Workload.0/P2.0", 10, 50);
  add_phase(events, "Workload.0/P3.0", 20, 40);
  add_phase(events, "Workload.0/P4.0", 40, 60);

  std::vector<trace::MonitoringSampleRecord> samples;
  const auto sample = [&](const std::string& r, TimeNs t, double v) {
    samples.push_back({r, 0, t, v});
  };
  sample("R1", 10, 60.0);
  sample("R1", 30, 95.0);
  sample("R1", 50, 70.0);
  sample("R1", 60, 40.0);
  sample("R2", 10, 0.0);
  sample("R2", 30, 40.0);
  sample("R2", 50, 30.0);
  sample("R2", 60, 0.0);
  sample("R3", 10, 0.0);
  sample("R3", 30, 90.0);
  sample("R3", 50, 40.0);
  sample("R3", 60, 0.0);

  CharacterizationInput input;
  input.model = &execution;
  input.resources = &resources;
  input.rules = &rules;
  input.phase_events = events;
  input.samples = samples;
  input.config.timeslice = 10;
  input.config.min_issue_impact = 0.0;
  const CharacterizationResult result = characterize(input);

  std::cout << "Figure 2 worked example (paper timeslices 1..6 are columns)\n\n";

  // (a) execution trace.
  std::cout << "(a) execution trace\n";
  TextTable trace_table({"phase", "slices"});
  for (const char* name : {"P1", "P2", "P3", "P4"}) {
    const InstanceId id =
        result.trace.find(std::string("Workload.0/") + name + ".0");
    const PhaseInstance& instance = result.trace.instance(id);
    trace_table.add_row({name, std::to_string(instance.begin / 10 + 1) + "-" +
                                   std::to_string(instance.end / 10)});
  }
  trace_table.render(std::cout);

  // (b) rules.
  std::cout << "\n(b) attribution rules\n";
  TextTable rule_table({"", "P1", "P2", "P3", "P4"});
  const auto rule_text = [&](PhaseTypeId p, ResourceId r) -> std::string {
    const AttributionRule rule = rules.get(p, r);
    if (rule.is_none()) return "-";
    if (rule.is_exact()) return format_fixed(rule.amount, 0) + "%";
    return format_fixed(rule.amount, 0) + "x";
  };
  for (const auto& [rname, rid] :
       {std::pair{"R1", r1}, std::pair{"R2", r2}, std::pair{"R3", r3}}) {
    rule_table.add_row({rname, rule_text(p1, rid), rule_text(p2, rid),
                        rule_text(p3, rid), rule_text(p4, rid)});
  }
  rule_table.render(std::cout);

  // (c) demand estimation matrix.
  std::cout << "\n(c) timeslice demand (exact + variable weight)\n";
  TextTable demand_table({"", "t1", "t2", "t3", "t4", "t5", "t6"});
  for (const auto& matrix : result.demand) {
    std::vector<std::string> row{
        resources.resource(matrix.resource).name};
    for (int s = 0; s < 6; ++s) {
      row.push_back(format_fixed(matrix.exact[s], 0) + "+" +
                    format_fixed(matrix.variable[s], 0) + "v");
    }
    demand_table.add_row(row);
  }
  demand_table.render(std::cout);

  // (d) monitoring data.
  std::cout << "\n(d) coarse monitoring (avg rate per window)\n";
  TextTable monitor_table({"resource", "window [ts]", "avg"});
  for (const auto& series : result.monitored.series()) {
    for (const auto& m : series.measurements) {
      monitor_table.add_row(
          {resources.resource(series.resource).name,
           std::to_string(m.begin / 10 + 1) + "-" + std::to_string(m.end / 10),
           format_fixed(m.value, 0) + "%"});
    }
  }
  monitor_table.render(std::cout);

  // (e) upsampled consumption.
  std::cout << "\n(e) upsampled consumption per timeslice\n";
  TextTable up_table({"", "t1", "t2", "t3", "t4", "t5", "t6"});
  for (const auto& r : result.usage.resources) {
    std::vector<std::string> row{resources.resource(r.resource).name};
    for (int s = 0; s < 6; ++s) {
      row.push_back(format_fixed(r.upsampled.usage[s], 0) + "%");
    }
    up_table.add_row(row);
  }
  up_table.render(std::cout);

  // (f) attribution to phases.
  std::cout << "\n(f) per-phase attribution (resource:usage at each slice)\n";
  for (const auto& r : result.usage.resources) {
    std::cout << resources.resource(r.resource).name << ":";
    for (TimesliceIndex s = 0; s < 6; ++s) {
      std::cout << "  t" << (s + 1) << "[";
      bool first = true;
      for (const auto& entry : r.slice_entries(s)) {
        if (!first) std::cout << " ";
        first = false;
        std::cout << result.trace.instance(entry.instance).path.substr(11, 2)
                  << "=" << format_fixed(entry.usage, 0);
      }
      std::cout << "]";
    }
    std::cout << "\n";
  }

  std::cout << "\nBottlenecks (paper §III-E):\n";
  const InstanceId p2i = result.trace.find("Workload.0/P2.0");
  const InstanceId p3i = result.trace.find("Workload.0/P3.0");
  std::cout << "  P2 self-limited on R3 (80% Exact cap met): "
            << result.bottlenecks.self_limited.at({p2i, r3}) << " ns\n";
  std::cout << "  P2 saturated on R3: "
            << result.bottlenecks.saturated.at({p2i, r3}) << " ns\n";
  std::cout << "  P3 saturated on R3: "
            << result.bottlenecks.saturated.at({p3i, r3}) << " ns\n";

  std::cout << "\nPerformance issues (optimistic makespan reduction):\n";
  for (const auto& issue : result.issues) {
    std::cout << "  " << issue.description << ": "
              << format_percent(issue.impact) << "\n";
  }

  // Numeric anchors from the running text.
  const AttributedResource* r2a = result.usage.find(r2, 0);
  G10_CHECK(std::abs(r2a->upsampled.usage[1] - 15.0) < 1e-9);
  G10_CHECK(std::abs(r2a->upsampled.usage[2] - 65.0) < 1e-9);
  std::cout << "\nPaper anchors hold: R2 upsampled 15%/65% at paper "
               "timeslices 2/3; attribution P3=50%, P2=15% at timeslice 3.\n";
  return 0;
}

}  // namespace
}  // namespace g10

int main() { return g10::run(); }
