// Figure 4 (paper §IV-C): optimistic impact of resource-bottleneck classes
// across the eight workloads (2 datasets x 4 algorithms) on both systems.
//
// For every workload and engine the harness runs the job, characterizes it
// with the tuned model, and reports the optimistic makespan reduction of
// removing all bottlenecks on each resource class (cpu, network, GC,
// MessageQueue). Paper shape targets:
//   - Giraph suffers significant GC and message-queue bottlenecks
//     (impacts in the tens of percent, 20.0-69.9% across workloads);
//   - PowerGraph shows network bottlenecks of insignificant size (<=5.5%)
//     and no GC / queue classes at all;
//   - neither system saturates compute across all workloads.
#include <iostream>
#include <map>

#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "support/experiment.hpp"
#include "support/workloads.hpp"

namespace g10::bench {
namespace {

std::map<std::string, double> issue_impacts(const CharacterizedRun& run) {
  std::map<std::string, double> impacts;
  for (const auto& issue : run.result.issues) {
    if (issue.kind != core::IssueKind::kResourceBottleneck) continue;
    impacts[run.model.resources.resource(issue.resource).name] = issue.impact;
  }
  return impacts;
}

std::string cell(const std::map<std::string, double>& impacts,
                 const std::string& key) {
  const auto it = impacts.find(key);
  return it == impacts.end() ? "-" : format_percent(it->second);
}

int run() {
  std::cout << "Figure 4: optimistic impact of bottleneck classes, "
               "8 workloads x 2 systems\n\n";
  const std::vector<Dataset> datasets = {make_rmat_dataset(17),
                                         make_datagen_dataset(131072, 16.0)};
  const AlgorithmSuite algorithms(/*pagerank_iterations=*/40,
                                  /*cdlp_iterations=*/15, /*bfs_source=*/1);

  CharacterizeOptions options;
  options.timeslice = 20 * kMillisecond;
  options.monitoring_interval = 160 * kMillisecond;

  TextTable table({"system", "workload", "cpu", "network", "GC",
                   "MessageQueue", "makespan [s]"});
  CsvWriter csv(results_dir() + "/fig4_resource_bottlenecks.csv");
  csv.write_row(std::vector<std::string>{"system", "workload", "cpu",
                                         "network", "gc", "message_queue",
                                         "makespan_s"});

  double giraph_blocking_min = 1.0;
  double giraph_blocking_max = 0.0;
  double pgraph_network_max = 0.0;

  for (const Dataset& dataset : datasets) {
    for (const AlgorithmEntry& algorithm : algorithms.entries()) {
      const std::string workload = algorithm.name + "/" + dataset.name;
      {
        const auto run = characterize_pregel(default_pregel_config(),
                                             dataset.graph, *algorithm.pregel,
                                             options);
        const auto impacts = issue_impacts(run);
        const double blocking =
            (impacts.contains("GC") ? impacts.at("GC") : 0.0) +
            (impacts.contains("MessageQueue") ? impacts.at("MessageQueue")
                                              : 0.0);
        giraph_blocking_min = std::min(giraph_blocking_min, blocking);
        giraph_blocking_max = std::max(giraph_blocking_max, blocking);
        table.add_row({"Giraph-sim", workload, cell(impacts, "cpu"),
                       cell(impacts, "network"), cell(impacts, "GC"),
                       cell(impacts, "MessageQueue"),
                       format_fixed(to_seconds(run.artifacts.makespan), 2)});
        csv.write_row(std::vector<std::string>{
            "giraph", workload,
            format_fixed(impacts.contains("cpu") ? impacts.at("cpu") : 0, 4),
            format_fixed(
                impacts.contains("network") ? impacts.at("network") : 0, 4),
            format_fixed(impacts.contains("GC") ? impacts.at("GC") : 0, 4),
            format_fixed(impacts.contains("MessageQueue")
                             ? impacts.at("MessageQueue")
                             : 0,
                         4),
            format_fixed(to_seconds(run.artifacts.makespan), 3)});
      }
      {
        const auto run = characterize_gas(default_gas_config(), dataset.graph,
                                          *algorithm.gas, options);
        const auto impacts = issue_impacts(run);
        pgraph_network_max = std::max(
            pgraph_network_max,
            impacts.contains("network") ? impacts.at("network") : 0.0);
        table.add_row({"PowerGraph-sim", workload, cell(impacts, "cpu"),
                       cell(impacts, "network"), "-", "-",
                       format_fixed(to_seconds(run.artifacts.makespan), 2)});
        csv.write_row(std::vector<std::string>{
            "powergraph", workload,
            format_fixed(impacts.contains("cpu") ? impacts.at("cpu") : 0, 4),
            format_fixed(
                impacts.contains("network") ? impacts.at("network") : 0, 4),
            "", "", format_fixed(to_seconds(run.artifacts.makespan), 3)});
      }
    }
  }
  table.render(std::cout);

  std::cout << "\nMeasured: Giraph-sim GC+queue blocking impact spans "
            << format_percent(giraph_blocking_min) << " - "
            << format_percent(giraph_blocking_max)
            << " (paper: 20.0% - 69.9%)\n";
  std::cout << "Measured: PowerGraph-sim max network impact "
            << format_percent(pgraph_network_max) << " (paper: <= 5.5%)\n";
  std::cout << "PowerGraph-sim has no GC or message-queue bottleneck classes "
               "(native C++, interleaved communication), as in the paper.\n";
  return 0;
}

}  // namespace
}  // namespace g10::bench

int main() { return g10::bench::run(); }
