// Ablation: the timeslice duration (DESIGN.md design-choice; paper §III-C
// calls it "an important parameter in tuning Grade10's performance
// characterization process").
//
// One PageRank run on the Giraph stand-in is analyzed at several timeslice
// durations with the monitoring interval held at 8x the timeslice (the
// paper's recommended upsampling ratio). Reported per setting: the
// upsampling error against a 10 ms ground truth, the number of slices the
// analysis manipulates, and the stability of the headline issue impacts.
#include <iostream>

#include "algorithms/programs.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "support/experiment.hpp"
#include "support/workloads.hpp"

namespace g10::bench {
namespace {

constexpr DurationNs kTruthInterval = 10 * kMillisecond;

int run() {
  std::cout << "Ablation: timeslice duration (PageRank on Giraph-sim, "
               "monitoring at 8x the timeslice)\n\n";
  const Dataset dataset = make_rmat_dataset(15);
  const algorithms::PageRank pagerank(20);
  const auto cfg = default_pregel_config();
  const auto artifacts =
      engine::PregelEngine(cfg).run(dataset.graph, pagerank);
  const auto truth_samples = monitor::sample_ground_truth(
      artifacts.ground_truth, kTruthInterval, artifacts.makespan);
  const auto model = pregel_framework_model(cfg);

  TextTable table({"timeslice", "slices", "upsample err vs 10ms truth",
                   "GC impact", "imbalance(ComputeThread)"});
  for (const DurationNs slice :
       {10 * kMillisecond, 20 * kMillisecond, 50 * kMillisecond,
        100 * kMillisecond, 200 * kMillisecond}) {
    const auto samples = monitor::sample_ground_truth(
        artifacts.ground_truth, 8 * slice, artifacts.makespan);
    core::CharacterizationInput input;
    input.model = &model.execution;
    input.resources = &model.resources;
    input.rules = &model.tuned_rules;
    input.phase_events = artifacts.phase_events;
    input.blocking_events = artifacts.blocking_events;
    input.samples = samples;
    input.config.timeslice = slice;
    input.config.min_issue_impact = 0.0;
    const auto result = core::characterize(input);

    // Upsampling error vs the fine ground truth, machine 0 CPU.
    const core::AttributedResource* cpu = result.usage.find(model.cpu, 0);
    double num = 0.0;
    double den = 0.0;
    if (cpu != nullptr) {
      for (const auto& sample : truth_samples) {
        if (sample.resource != "cpu" || sample.machine != 0) continue;
        const auto s = static_cast<std::size_t>((sample.time - 1) / slice);
        if (s < cpu->upsampled.usage.size()) {
          num += std::abs(cpu->upsampled.usage[s] - sample.value);
          den += sample.value;
        }
      }
    }
    double gc_impact = 0.0;
    double imbalance = 0.0;
    for (const auto& issue : result.issues) {
      if (issue.kind == core::IssueKind::kResourceBottleneck &&
          issue.resource == model.gc) {
        gc_impact = issue.impact;
      }
      if (issue.kind == core::IssueKind::kImbalance &&
          model.execution.type(issue.phase_type).name == "ComputeThread") {
        imbalance = issue.impact;
      }
    }
    table.add_row({std::to_string(slice / kMillisecond) + " ms",
                   std::to_string(cpu != nullptr ? cpu->slice_count() : 0),
                   format_percent(den > 0 ? num / den : 0.0),
                   format_percent(gc_impact), format_percent(imbalance)});
  }
  table.render(std::cout);
  std::cout
      << "\nExpected: finer timeslices track the ground truth better (the\n"
         "error vs the 10 ms truth grows with the slice), while the issue\n"
         "impacts (from logs, not monitoring) stay stable across settings —\n"
         "which is why coarse, cheap monitoring plus upsampling suffices.\n";
  return 0;
}

}  // namespace
}  // namespace g10::bench

int main() { return g10::bench::run(); }
