// Figure 5 (paper §IV-D): estimated impact of workload imbalance in
// PowerGraph across eight jobs, broken down by phase type.
//
// Grade10's imbalance detector balances concurrent same-type phases
// (total work preserved) and reports the optimistic makespan reduction.
// Paper shape targets: imbalance accounts for a significant portion of the
// execution time (up to 43.7%); imbalance in CDLP's Gather steps is the
// most impactful class (38.3-42.7%).
#include <iostream>
#include <map>

#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "support/experiment.hpp"
#include "support/workloads.hpp"

namespace g10::bench {
namespace {

const std::vector<std::string> kPhaseTypes = {
    "LoadWorker", "WorkerGather", "WorkerApply", "WorkerScatter",
    "WorkerExchange"};

int run() {
  std::cout << "Figure 5: imbalance impact per phase type "
               "(PowerGraph-sim, sync bug present)\n\n";
  const std::vector<Dataset> datasets = {make_rmat_dataset(17),
                                         make_datagen_dataset(131072, 16.0)};
  const AlgorithmSuite algorithms(/*pagerank_iterations=*/40,
                                  /*cdlp_iterations=*/15, /*bfs_source=*/1);

  auto cfg = default_gas_config();
  cfg.sync_bug.enabled = true;  // the buggy PowerGraph build of §IV-D

  CharacterizeOptions options;
  options.timeslice = 20 * kMillisecond;
  options.monitoring_interval = 160 * kMillisecond;

  TextTable table({"workload", "Load", "Gather", "Apply", "Scatter",
                   "Exchange"});
  CsvWriter csv(results_dir() + "/fig5_imbalance_impact.csv");
  csv.write_row(std::vector<std::string>{"workload", "load", "gather",
                                         "apply", "scatter", "exchange"});

  double max_overall = 0.0;
  double cdlp_gather_min = 1.0;
  double cdlp_gather_max = 0.0;
  for (const Dataset& dataset : datasets) {
    for (const AlgorithmEntry& algorithm : algorithms.entries()) {
      const std::string workload = algorithm.name + "/" + dataset.name;
      const auto run = characterize_gas(cfg, dataset.graph, *algorithm.gas,
                                        options);
      std::map<std::string, double> impact;
      for (const auto& issue : run.result.issues) {
        if (issue.kind != core::IssueKind::kImbalance) continue;
        impact[run.model.execution.type(issue.phase_type).name] =
            issue.impact;
      }
      std::vector<std::string> row{workload};
      std::vector<std::string> csv_row{workload};
      for (const auto& type : kPhaseTypes) {
        const double value = impact.contains(type) ? impact.at(type) : 0.0;
        row.push_back(format_percent(value));
        csv_row.push_back(format_fixed(value, 4));
        max_overall = std::max(max_overall, value);
        if (algorithm.name == "CDLP" && type == "WorkerGather") {
          cdlp_gather_min = std::min(cdlp_gather_min, value);
          cdlp_gather_max = std::max(cdlp_gather_max, value);
        }
      }
      table.add_row(std::move(row));
      csv.write_row(csv_row);
    }
  }
  table.render(std::cout);

  std::cout << "\nMeasured: largest per-type imbalance impact "
            << format_percent(max_overall) << " (paper: up to 43.7%)\n";
  std::cout << "Measured: CDLP Gather imbalance spans "
            << format_percent(cdlp_gather_min) << " - "
            << format_percent(cdlp_gather_max)
            << " (paper: 38.3% - 42.7%, the most impactful class)\n";
  return 0;
}

}  // namespace
}  // namespace g10::bench

int main() { return g10::bench::run(); }
