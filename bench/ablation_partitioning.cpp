// Ablation: how the vertex-cut strategy drives the imbalance Grade10
// observes in the GAS engine (DESIGN.md design-choice ablation).
//
// Fig. 5/6 attribute PowerGraph's inter-worker imbalance to "poor workload
// distribution". This harness runs the same CDLP job under the three
// bundled vertex-cut strategies and reports (a) the edge-count imbalance of
// the partitioning itself, (b) its replication factor, and (c) the
// imbalance impact Grade10 detects — showing that the greedy cut removes
// most of the imbalance the hash-source cut creates.
#include <algorithm>
#include <iostream>

#include "algorithms/programs.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "graph/partition.hpp"
#include "support/experiment.hpp"
#include "support/workloads.hpp"

namespace g10::bench {
namespace {

double edge_imbalance(const std::vector<graph::EdgeIndex>& counts) {
  graph::EdgeIndex max = 0;
  graph::EdgeIndex sum = 0;
  for (const auto c : counts) {
    max = std::max(max, c);
    sum += c;
  }
  if (sum == 0) return 0.0;
  return static_cast<double>(max) * static_cast<double>(counts.size()) /
         static_cast<double>(sum);
}

int run() {
  std::cout << "Ablation: vertex-cut strategy vs observed imbalance "
               "(CDLP on PowerGraph-sim)\n\n";
  const Dataset dataset = make_rmat_dataset(16);
  const algorithms::Cdlp cdlp(10);
  const auto parts = static_cast<std::uint32_t>(
      testbed_cluster().machine_count);

  CharacterizeOptions options;
  options.timeslice = 50 * kMillisecond;
  options.monitoring_interval = 400 * kMillisecond;

  TextTable table({"strategy", "edge imbalance", "replication",
                   "gather imbalance impact", "makespan [s]"});
  const std::vector<std::pair<std::string, engine::VertexCutStrategy>>
      strategies = {
          {"range-source", engine::VertexCutStrategy::kRangeSource},
          {"hash-source", engine::VertexCutStrategy::kHashSource},
          {"random", engine::VertexCutStrategy::kRandom},
          {"greedy", engine::VertexCutStrategy::kGreedy},
      };
  for (const auto& [name, strategy] : strategies) {
    graph::VertexCutPartition cut;
    switch (strategy) {
      case engine::VertexCutStrategy::kRangeSource:
        cut = graph::partition_vertex_cut_range_source(dataset.graph, parts);
        break;
      case engine::VertexCutStrategy::kHashSource:
        cut = graph::partition_vertex_cut_hash_source(dataset.graph, parts);
        break;
      case engine::VertexCutStrategy::kRandom:
        cut = graph::partition_vertex_cut_random(dataset.graph, parts,
                                                 2020 ^ 0x9E37);
        break;
      case engine::VertexCutStrategy::kGreedy:
        cut = graph::partition_vertex_cut_greedy(dataset.graph, parts);
        break;
    }
    auto cfg = default_gas_config();
    cfg.partitioning = strategy;
    const auto run = characterize_gas(cfg, dataset.graph, cdlp, options);
    double gather_impact = 0.0;
    for (const auto& issue : run.result.issues) {
      if (issue.kind == core::IssueKind::kImbalance &&
          run.model.execution.type(issue.phase_type).name == "WorkerGather") {
        gather_impact = issue.impact;
      }
    }
    table.add_row({name, format_fixed(edge_imbalance(cut.edge_counts()), 2),
                   format_fixed(cut.replication_factor(), 2),
                   format_percent(gather_impact),
                   format_fixed(to_seconds(run.artifacts.makespan), 2)});
  }
  table.render(std::cout);
  std::cout
      << "\nExpected: range-source (input-file-split placement, the engine\n"
         "default) shows the largest edge imbalance and gather-imbalance\n"
         "impact; greedy balances edges while keeping replication below\n"
         "random's.\n";
  return 0;
}

}  // namespace
}  // namespace g10::bench

int main() { return g10::bench::run(); }
