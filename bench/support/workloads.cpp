#include "support/workloads.hpp"

#include "graph/generators.hpp"

namespace g10::bench {

Dataset make_rmat_dataset(int scale, double edge_factor, std::uint64_t seed) {
  graph::RmatParams params;
  params.scale = scale;
  params.edge_factor = edge_factor;
  params.seed = seed;
  Dataset d{"rmat-" + std::to_string(scale), generate_rmat(params)};
  return d;
}

Dataset make_datagen_dataset(graph::VertexId vertices, double mean_degree,
                             std::uint64_t seed) {
  graph::DatagenParams params;
  params.vertices = vertices;
  params.mean_degree = mean_degree;
  params.seed = seed;
  Dataset d{"datagen-" + std::to_string(vertices),
            generate_datagen_like(params)};
  return d;
}

AlgorithmSuite::AlgorithmSuite(int pagerank_iterations, int cdlp_iterations,
                               graph::VertexId bfs_source)
    : pagerank_(pagerank_iterations),
      bfs_(bfs_source),
      wcc_(),
      cdlp_(cdlp_iterations) {}

std::vector<AlgorithmEntry> AlgorithmSuite::entries() const {
  return {
      {"BFS", &bfs_, &bfs_},
      {"PageRank", &pagerank_, &pagerank_},
      {"WCC", &wcc_, &wcc_},
      {"CDLP", &cdlp_, &cdlp_},
  };
}

}  // namespace g10::bench
