// Shared workload definitions for the experiment harnesses: the two
// datasets (R-MAT / graph500-like and Datagen-like, standing in for the
// paper's Graphalytics datasets) and the four algorithms of §IV-A.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "algorithms/programs.hpp"
#include "graph/graph.hpp"

namespace g10::bench {

struct Dataset {
  std::string name;
  graph::Graph graph;
};

/// Directed scale-free dataset (graph500 stand-in).
Dataset make_rmat_dataset(int scale, double edge_factor = 16.0,
                          std::uint64_t seed = 900);

/// Undirected clustered dataset (LDBC Datagen stand-in).
Dataset make_datagen_dataset(graph::VertexId vertices, double mean_degree = 16.0,
                             std::uint64_t seed = 901);

/// One algorithm usable by both engines (every program implements both
/// interfaces).
struct AlgorithmEntry {
  std::string name;
  const algorithms::PregelProgram* pregel = nullptr;
  const algorithms::GasProgram* gas = nullptr;
};

/// Owns the four §IV-A algorithm instances and exposes them by interface.
class AlgorithmSuite {
 public:
  AlgorithmSuite(int pagerank_iterations, int cdlp_iterations,
                 graph::VertexId bfs_source);

  std::vector<AlgorithmEntry> entries() const;

  const algorithms::PageRank& pagerank() const { return pagerank_; }
  const algorithms::Bfs& bfs() const { return bfs_; }
  const algorithms::Wcc& wcc() const { return wcc_; }
  const algorithms::Cdlp& cdlp() const { return cdlp_; }

 private:
  algorithms::PageRank pagerank_;
  algorithms::Bfs bfs_;
  algorithms::Wcc wcc_;
  algorithms::Cdlp cdlp_;
};

}  // namespace g10::bench
