#include "support/experiment.hpp"

#include <cstdlib>
#include <filesystem>

namespace g10::bench {

sim::ClusterSpec testbed_cluster() {
  sim::ClusterSpec cluster;
  cluster.machine_count = 4;
  cluster.machine.cores = 8;
  cluster.machine.core_work_per_sec = 4.0e7;
  cluster.machine.nic_bandwidth_bps = 1.0e9;  // 1 Gb/s
  return cluster;
}

engine::PregelConfig default_pregel_config() {
  engine::PregelConfig cfg;
  cfg.cluster = testbed_cluster();
  cfg.threads_per_worker = 7;
  // Java serialization overhead: fatter wire messages than the GAS engine,
  // and enough allocation churn to trigger regular collections.
  cfg.costs.bytes_per_message = 128.0;
  cfg.gc.young_gen_bytes = 24e6;
  cfg.gc.pause_base_seconds = 0.06;
  cfg.gc.pause_per_byte = 1.0e-9;
  cfg.queue.capacity_bytes = 2e6;
  cfg.seed = 2020;
  return cfg;
}

engine::GasConfig default_gas_config() {
  engine::GasConfig cfg;
  cfg.cluster = testbed_cluster();
  cfg.threads_per_worker = 7;
  cfg.partitioning = engine::VertexCutStrategy::kRangeSource;
  cfg.seed = 2020;
  return cfg;
}

core::FrameworkModel pregel_framework_model(const engine::PregelConfig& cfg) {
  core::PregelModelParams params;
  params.cores = cfg.cluster.machine.cores;
  params.threads = cfg.effective_threads();
  params.network_capacity = cfg.cluster.machine.nic_bytes_per_sec();
  return core::make_pregel_model(params);
}

core::FrameworkModel gas_framework_model(const engine::GasConfig& cfg) {
  core::GasModelParams params;
  params.cores = cfg.cluster.machine.cores;
  params.threads = cfg.effective_threads();
  params.network_capacity = cfg.cluster.machine.nic_bytes_per_sec();
  return core::make_gas_model(params);
}

namespace {

core::CharacterizationResult run_pipeline(const CharacterizedRun& run,
                                          const CharacterizeOptions& options,
                                          bool drop_gc_records) {
  core::CharacterizationInput input;
  input.model = &run.model.execution;
  input.resources = &run.model.resources;
  input.rules = options.tuned_rules ? &run.model.tuned_rules
                                    : &run.model.untuned_rules;
  input.phase_events = run.artifacts.phase_events;
  std::vector<trace::PhaseEventRecord> filtered_events;
  std::vector<trace::BlockingEventRecord> no_blocks;
  if (drop_gc_records) {
    // Untuned analysis: the analyst has not modeled GC, so GcPause phases
    // and blocking events are absent from the model's view of the run.
    for (const auto& event : run.artifacts.phase_events) {
      if (event.path.leaf().type != "GcPause") {
        filtered_events.push_back(event);
      }
    }
    input.phase_events = filtered_events;
    input.blocking_events = no_blocks;
  } else {
    input.blocking_events = run.artifacts.blocking_events;
  }
  input.samples = run.samples;
  input.config.timeslice = options.timeslice;
  input.config.min_issue_impact = options.min_issue_impact;
  return core::characterize(input);
}

}  // namespace

CharacterizedRun characterize_pregel(const engine::PregelConfig& cfg,
                                     const graph::Graph& graph,
                                     const algorithms::PregelProgram& program,
                                     const CharacterizeOptions& options) {
  CharacterizedRun run;
  run.artifacts = engine::PregelEngine(cfg).run(graph, program);
  run.samples = monitor::sample_ground_truth(run.artifacts.ground_truth,
                                             options.monitoring_interval,
                                             run.artifacts.makespan);
  run.model = pregel_framework_model(cfg);
  run.result = run_pipeline(run, options, /*drop_gc_records=*/!options.tuned_rules);
  return run;
}

CharacterizedRun characterize_gas(const engine::GasConfig& cfg,
                                  const graph::Graph& graph,
                                  const algorithms::GasProgram& program,
                                  const CharacterizeOptions& options) {
  CharacterizedRun run;
  run.artifacts = engine::GasEngine(cfg).run(graph, program);
  run.samples = monitor::sample_ground_truth(run.artifacts.ground_truth,
                                             options.monitoring_interval,
                                             run.artifacts.makespan);
  run.model = gas_framework_model(cfg);
  run.result = run_pipeline(run, options, /*drop_gc_records=*/false);
  return run;
}

std::string results_dir() {
  // srclint: entropy-ok(G10_RESULTS_DIR picks where bench output lands, not what it contains)
  const char* env = std::getenv("G10_RESULTS_DIR");
  const std::string dir = env != nullptr ? env : "bench_results";
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace g10::bench
