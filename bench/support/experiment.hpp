// Shared experiment machinery: calibrated engine configurations (the
// "testbed" of §IV-A) and run-then-characterize helpers used by every
// table/figure harness.
#pragma once

#include <string>

#include "engine/gas/gas_engine.hpp"
#include "engine/pregel/pregel_engine.hpp"
#include "grade10/models/gas_model.hpp"
#include "grade10/models/pregel_model.hpp"
#include "grade10/pipeline.hpp"
#include "monitor/sampler.hpp"

namespace g10::bench {

/// The simulated testbed: 4 machines x 8 cores, 1 Gb/s NICs. Engine cost
/// constants are calibrated so the Giraph stand-in shows the paper's
/// managed-runtime pathologies (GC pauses, queue stalls, unsaturated CPU)
/// and the PowerGraph stand-in is lean but imbalance-prone.
sim::ClusterSpec testbed_cluster();

engine::PregelConfig default_pregel_config();
engine::GasConfig default_gas_config();

core::FrameworkModel pregel_framework_model(const engine::PregelConfig& cfg);
core::FrameworkModel gas_framework_model(const engine::GasConfig& cfg);

/// One engine run pushed through the full Grade10 pipeline.
struct CharacterizedRun {
  trace::RunArtifacts artifacts;
  std::vector<trace::MonitoringSampleRecord> samples;
  core::FrameworkModel model;
  core::CharacterizationResult result;
};

struct CharacterizeOptions {
  DurationNs timeslice = 50 * kMillisecond;
  DurationNs monitoring_interval = 400 * kMillisecond;  ///< 8x default
  bool tuned_rules = true;
  /// Untuned analysis also drops GC phases/blocking from the trace
  /// (an untuned model does not describe them).
  double min_issue_impact = 0.0;
};

CharacterizedRun characterize_pregel(const engine::PregelConfig& cfg,
                                     const graph::Graph& graph,
                                     const algorithms::PregelProgram& program,
                                     const CharacterizeOptions& options);

CharacterizedRun characterize_gas(const engine::GasConfig& cfg,
                                  const graph::Graph& graph,
                                  const algorithms::GasProgram& program,
                                  const CharacterizeOptions& options);

/// Directory for CSV exports (created on demand): bench/results under the
/// current working directory, overridable via G10_RESULTS_DIR.
std::string results_dir();

}  // namespace g10::bench
