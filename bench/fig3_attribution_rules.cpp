// Figure 3 (paper §IV-B): impact of attribution rules on resource
// attribution — PageRank on the Giraph stand-in, one worker's Compute
// phase, analyzed (a) without rules (implicit Variable 1x) and (b) with the
// tuned rules ("an active compute thread uses exactly one CPU core").
//
// The harness prints, for both configurations: the estimated CPU demand and
// attributed CPU usage of worker 0's Compute subtree over time, plus the
// fraction of slices flagged CPU-bottlenecked, and exports the full series
// to CSV. Paper shape targets:
//   (1) untuned demand exceeds the thread count; tuned demand never does;
//   (2) with rules, whenever compute threads are not blocked they are
//       CPU-bottlenecked; without rules, those bottlenecks are missed;
//   (3) GC regions show blocking (demand collapses), queue-bound regions
//       show bursty sub-core attributed usage.
#include <algorithm>
#include <iostream>

#include "algorithms/programs.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "support/experiment.hpp"
#include "support/workloads.hpp"

namespace g10::bench {
namespace {

struct Series {
  /// Machine-0 CPU demand estimate (exact + variable weights), the curve of
  /// Fig. 3's upper plots.
  std::vector<double> demand;
  /// CPU usage attributed to worker 0's compute threads.
  std::vector<double> usage;
  std::vector<char> bottlenecked;  ///< any worker-0 compute thread
  std::vector<char> gc_active;    ///< a GcPause covers this slice (mach. 0)
  double max_demand_outside_gc = 0.0;
  double bottleneck_fraction = 0.0;  ///< of slices with active compute
};

Series analyze(const CharacterizedRun& run) {
  const auto& result = run.result;
  Series out;
  const core::ResourceId cpu = run.model.cpu;
  const core::AttributedResource* attributed = result.usage.find(cpu, 0);
  const core::DemandMatrix* demand = nullptr;
  for (const auto& m : result.demand) {
    if (m.resource == cpu && m.machine == 0) demand = &m;
  }
  if (attributed == nullptr || demand == nullptr) return out;

  const core::PhaseTypeId thread_type =
      run.model.execution.find("ComputeThread");
  const core::PhaseTypeId gc_type = run.model.execution.find("GcPause");
  std::vector<char> is_compute_leaf(result.trace.instances().size(), 0);
  const auto slices = static_cast<std::size_t>(attributed->slice_count());
  out.gc_active.assign(slices, 0);
  const TimesliceGrid grid(50 * kMillisecond);
  for (const auto& instance : result.trace.instances()) {
    if (instance.type == thread_type && instance.machine == 0) {
      is_compute_leaf[static_cast<std::size_t>(instance.id)] = 1;
    }
    if (instance.type == gc_type && instance.machine == 0) {
      for (TimesliceIndex s = grid.slice_of(instance.begin);
           s * grid.slice_duration() < instance.end; ++s) {
        if (static_cast<std::size_t>(s) < slices) {
          out.gc_active[static_cast<std::size_t>(s)] = 1;
        }
      }
    }
  }

  out.demand.assign(slices, 0.0);
  out.usage.assign(slices, 0.0);
  out.bottlenecked.assign(slices, 0);
  for (std::size_t s = 0; s < slices; ++s) {
    out.demand[s] = demand->exact[s] + demand->variable[s];
    if (!out.gc_active[s]) {
      out.max_demand_outside_gc =
          std::max(out.max_demand_outside_gc, out.demand[s]);
    }
  }
  const core::ResourceSaturation* saturation =
      result.bottlenecks.find_saturation(cpu, 0);
  const double cap_threshold = 0.85;
  std::vector<double> compute_demand(slices, 0.0);
  for (std::size_t s = 0; s < slices; ++s) {
    for (const auto& entry :
         attributed->slice_entries(static_cast<TimesliceIndex>(s))) {
      if (!is_compute_leaf[static_cast<std::size_t>(entry.instance)]) continue;
      out.usage[s] += entry.usage;
      compute_demand[s] += entry.fraction;
      const bool saturated =
          saturation != nullptr && saturation->saturated[s] != 0;
      const bool self_limited = entry.exact && entry.demand > 0.0 &&
                                entry.usage >= cap_threshold * entry.demand;
      if (saturated || self_limited) out.bottlenecked[s] = 1;
    }
  }
  std::size_t active = 0;
  std::size_t bottlenecked = 0;
  for (std::size_t s = 0; s < slices; ++s) {
    // Only slices where compute threads are mostly runnable (not blocked
    // on GC or the message queue) count toward the paper's claim.
    if (compute_demand[s] > 3.0) {
      ++active;
      if (out.bottlenecked[s]) ++bottlenecked;
    }
  }
  out.bottleneck_fraction =
      active > 0 ? static_cast<double>(bottlenecked) /
                       static_cast<double>(active)
                 : 0.0;
  return out;
}

int run() {
  std::cout << "Figure 3: impact of attribution rules (PageRank on "
               "Giraph-sim, worker 0 Compute phase)\n\n";
  const Dataset dataset = make_rmat_dataset(15);
  const algorithms::PageRank pagerank(20);
  auto cfg = default_pregel_config();

  CharacterizeOptions tuned_options;
  tuned_options.timeslice = 50 * kMillisecond;
  tuned_options.monitoring_interval = 400 * kMillisecond;
  tuned_options.tuned_rules = true;
  const CharacterizedRun tuned =
      characterize_pregel(cfg, dataset.graph, pagerank, tuned_options);

  CharacterizeOptions untuned_options = tuned_options;
  untuned_options.tuned_rules = false;
  const CharacterizedRun untuned =
      characterize_pregel(cfg, dataset.graph, pagerank, untuned_options);

  const Series with_rules = analyze(tuned);
  const Series without_rules = analyze(untuned);
  const int threads = cfg.effective_threads();

  TextTable table({"configuration", "max est. demand (non-GC)",
                   "demand > #threads?", "CPU-bottlenecked compute slices"});
  table.add_row({"(a) no rules (Variable 1x)",
                 format_fixed(without_rules.max_demand_outside_gc, 2),
                 without_rules.max_demand_outside_gc >
                         static_cast<double>(threads) + 0.01
                     ? "yes (wrong)"
                     : "no",
                 format_percent(without_rules.bottleneck_fraction)});
  table.add_row({"(b) tuned rules (Exact 1 core/thread)",
                 format_fixed(with_rules.max_demand_outside_gc, 2),
                 with_rules.max_demand_outside_gc >
                         static_cast<double>(threads) + 0.01
                     ? "yes (wrong)"
                     : "no",
                 format_percent(with_rules.bottleneck_fraction)});
  table.render(std::cout);

  std::cout << "\ncompute threads per worker: " << threads << "\n";
  std::cout << "GC blocking events in run: "
            << tuned.artifacts.blocking_events.size() << " (GC + queue)\n";

  // Export the full time series for both configurations.
  CsvWriter csv(results_dir() + "/fig3_attribution_rules.csv");
  csv.write_row(std::vector<std::string>{
      "slice", "t_ms", "untuned_demand", "untuned_usage",
      "untuned_bottleneck", "tuned_demand", "tuned_usage",
      "tuned_bottleneck"});
  const std::size_t slices =
      std::min(with_rules.demand.size(), without_rules.demand.size());
  for (std::size_t s = 0; s < slices; ++s) {
    csv.write_row(std::vector<double>{
        static_cast<double>(s), static_cast<double>(s) * 50.0,
        without_rules.demand[s], without_rules.usage[s],
        static_cast<double>(without_rules.bottlenecked[s]),
        with_rules.demand[s], with_rules.usage[s],
        static_cast<double>(with_rules.bottlenecked[s])});
  }

  std::cout
      << "\nPaper shape targets: (1) untuned demand exceeds the number of\n"
         "compute threads while tuned demand never does; (2) with rules,\n"
         "non-blocked compute is (almost always) CPU-bottlenecked, without\n"
         "rules those bottlenecks are mostly missed.\n";
  return 0;
}

}  // namespace
}  // namespace g10::bench

int main() { return g10::bench::run(); }
