// Table II (paper §IV-B): accuracy of the upsampling process.
//
// Methodology, mirroring the paper: run a PageRank job on each engine,
// collect per-machine CPU monitoring at 50 ms as ground truth, downsample
// the trace by 2x..64x, upsample back with (a) the constant-rate strawman,
// (b) Grade10 with the untuned model (implicit Variable rules, no GC
// modeling), and (c) Grade10 with the tuned model; report the relative
// sampling error sum|upsampled - truth| / sum(truth) over all machines.
//
// Paper reference numbers (CPU, 64x/3200 ms row): constant 82.97-98.71%,
// Giraph untuned 91.02%, Giraph tuned 56.71%, PowerGraph tuned <= 15.28%;
// at 8x/400 ms the tuned models reach <= 18.83%.
#include <iostream>
#include <optional>

#include "algorithms/programs.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "support/experiment.hpp"
#include "support/workloads.hpp"

namespace g10::bench {
namespace {

constexpr DurationNs kGroundTruthInterval = 50 * kMillisecond;

struct EngineRun {
  trace::RunArtifacts artifacts;
  std::vector<trace::MonitoringSampleRecord> fine_samples;
  core::FrameworkModel model;
  bool has_gc_records = false;
};

/// Per-machine ground-truth CPU usage per 50 ms slice (last partial slice
/// dropped).
std::vector<std::vector<double>> ground_truth_cpu(const EngineRun& run,
                                                  int machines,
                                                  std::size_t slices) {
  std::vector<std::vector<double>> truth(
      static_cast<std::size_t>(machines), std::vector<double>(slices, 0.0));
  for (const auto& sample : run.fine_samples) {
    if (sample.resource != "cpu") continue;
    const auto slice =
        static_cast<std::size_t>(sample.time / kGroundTruthInterval) - 1;
    if (slice < slices) {
      truth[static_cast<std::size_t>(sample.machine)][slice] = sample.value;
    }
  }
  return truth;
}

enum class Variant { kConstant, kUntuned, kTuned };

double upsampling_error(const EngineRun& run, int factor, Variant variant,
                        int machines) {
  const TimesliceGrid grid(kGroundTruthInterval);
  // Trace view: the untuned analyst has not modeled GC phases or blocking.
  core::ExecutionTrace::Options trace_options;
  std::vector<trace::PhaseEventRecord> events;
  std::span<const trace::PhaseEventRecord> event_span =
      run.artifacts.phase_events;
  std::span<const trace::BlockingEventRecord> block_span =
      run.artifacts.blocking_events;
  if (variant == Variant::kUntuned) {
    for (const auto& event : run.artifacts.phase_events) {
      if (event.path.leaf().type != "GcPause") events.push_back(event);
    }
    event_span = events;
    block_span = {};
  }
  const auto trace = core::ExecutionTrace::build(
      run.model.execution, run.model.resources, event_span, block_span,
      trace_options);
  const auto& rules = variant == Variant::kTuned ? run.model.tuned_rules
                                                 : run.model.untuned_rules;
  const auto demand =
      core::estimate_demand(run.model.resources, rules, trace, grid);

  const auto coarse = monitor::downsample(run.fine_samples, factor);
  const auto monitored =
      core::ResourceTrace::build(run.model.resources, coarse);
  const auto usage = core::attribute_usage(
      demand, monitored, grid, variant == Variant::kConstant);

  const auto slices = static_cast<std::size_t>(
      run.artifacts.makespan / kGroundTruthInterval);  // full slices only
  const auto truth = ground_truth_cpu(run, machines, slices);

  const core::ResourceId cpu = run.model.cpu;
  double num = 0.0;
  double den = 0.0;
  for (int machine = 0; machine < machines; ++machine) {
    const core::AttributedResource* r = usage.find(cpu, machine);
    if (r == nullptr) continue;
    for (std::size_t s = 0; s < slices; ++s) {
      const double up =
          s < r->upsampled.usage.size() ? r->upsampled.usage[s] : 0.0;
      num += std::abs(up - truth[static_cast<std::size_t>(machine)][s]);
      den += truth[static_cast<std::size_t>(machine)][s];
    }
  }
  return den > 0.0 ? num / den : 0.0;
}

int run() {
  std::cout << "Table II: relative upsampling error of CPU usage "
               "(PageRank, 50 ms ground truth)\n\n";

  const Dataset dataset = make_rmat_dataset(16);
  const algorithms::PageRank pagerank(120);

  EngineRun giraph;
  {
    const auto cfg = default_pregel_config();
    giraph.artifacts =
        engine::PregelEngine(cfg).run(dataset.graph, pagerank);
    giraph.fine_samples = monitor::sample_ground_truth(
        giraph.artifacts.ground_truth, kGroundTruthInterval,
        giraph.artifacts.makespan);
    giraph.model = pregel_framework_model(cfg);
  }
  EngineRun powergraph;
  {
    auto cfg = default_gas_config();
    powergraph.artifacts =
        engine::GasEngine(cfg).run(dataset.graph, pagerank);
    powergraph.fine_samples = monitor::sample_ground_truth(
        powergraph.artifacts.ground_truth, kGroundTruthInterval,
        powergraph.artifacts.makespan);
    powergraph.model = gas_framework_model(cfg);
  }
  const int machines = testbed_cluster().machine_count;
  std::cout << "dataset: " << dataset.name << " ("
            << dataset.graph.vertex_count() << " vertices, "
            << dataset.graph.edge_count() << " edges)\n";
  std::cout << "Giraph-sim makespan:     "
            << format_fixed(to_seconds(giraph.artifacts.makespan), 2)
            << " s\n";
  std::cout << "PowerGraph-sim makespan: "
            << format_fixed(to_seconds(powergraph.artifacts.makespan), 2)
            << " s\n\n";

  TextTable table({"interval", "ratio", "giraph const", "giraph untuned",
                   "giraph tuned", "pgraph const", "pgraph tuned"});
  CsvWriter csv(results_dir() + "/table2_upsampling_accuracy.csv");
  csv.write_row(std::vector<std::string>{
      "interval_ms", "ratio", "giraph_constant", "giraph_untuned",
      "giraph_tuned", "powergraph_constant", "powergraph_tuned"});
  for (const int factor : {2, 4, 8, 16, 32, 64}) {
    const double gc = upsampling_error(giraph, factor, Variant::kConstant,
                                       machines);
    const double gu = upsampling_error(giraph, factor, Variant::kUntuned,
                                       machines);
    const double gt =
        upsampling_error(giraph, factor, Variant::kTuned, machines);
    const double pc = upsampling_error(powergraph, factor,
                                       Variant::kConstant, machines);
    const double pt =
        upsampling_error(powergraph, factor, Variant::kTuned, machines);
    table.add_row({std::to_string(50 * factor) + " ms",
                   std::to_string(factor) + "x", format_percent(gc),
                   format_percent(gu), format_percent(gt), format_percent(pc),
                   format_percent(pt)});
    csv.write_row(std::vector<double>{50.0 * factor, static_cast<double>(factor),
                                      gc, gu, gt, pc, pt});
  }
  table.render(std::cout);

  std::cout
      << "\nPaper shape targets: error grows with the interval; the constant\n"
         "strawman reaches ~83-99% at 64x; untuned Giraph is comparable to\n"
         "the strawman (91.02%), tuned Giraph materially better (56.71%);\n"
         "tuned PowerGraph stays lowest (<=15.28% at 64x); tuned models are\n"
         "<=~19% at the recommended 8x.\n";
  return 0;
}

}  // namespace
}  // namespace g10::bench

int main() { return g10::bench::run(); }
