// Micro-benchmarks of the graph substrate: generator and partitioner
// throughput (edges per second).
#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "graph/partition.hpp"

namespace g10::graph {
namespace {

void BM_GenerateRmat(benchmark::State& state) {
  RmatParams params;
  params.scale = static_cast<int>(state.range(0));
  params.edge_factor = 16;
  for (auto _ : state) {
    auto g = generate_rmat(params);
    benchmark::DoNotOptimize(g);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(g.edge_count()));
  }
}
BENCHMARK(BM_GenerateRmat)->Arg(12)->Arg(14)->Arg(16);

void BM_GenerateDatagen(benchmark::State& state) {
  DatagenParams params;
  params.vertices = static_cast<VertexId>(1u << state.range(0));
  params.mean_degree = 16;
  for (auto _ : state) {
    auto g = generate_datagen_like(params);
    benchmark::DoNotOptimize(g);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(g.edge_count()));
  }
}
BENCHMARK(BM_GenerateDatagen)->Arg(12)->Arg(14)->Arg(16);

void BM_VertexCutGreedy(benchmark::State& state) {
  RmatParams params;
  params.scale = static_cast<int>(state.range(0));
  params.edge_factor = 16;
  const auto g = generate_rmat(params);
  for (auto _ : state) {
    auto cut = partition_vertex_cut_greedy(g, 8);
    benchmark::DoNotOptimize(cut);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(g.edge_count()));
  }
}
BENCHMARK(BM_VertexCutGreedy)->Arg(12)->Arg(14);

void BM_VertexCutHashSource(benchmark::State& state) {
  RmatParams params;
  params.scale = static_cast<int>(state.range(0));
  params.edge_factor = 16;
  const auto g = generate_rmat(params);
  for (auto _ : state) {
    auto cut = partition_vertex_cut_hash_source(g, 8);
    benchmark::DoNotOptimize(cut);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(g.edge_count()));
  }
}
BENCHMARK(BM_VertexCutHashSource)->Arg(12)->Arg(14);

void BM_EdgeCutHash(benchmark::State& state) {
  RmatParams params;
  params.scale = 14;
  params.edge_factor = 16;
  const auto g = generate_rmat(params);
  for (auto _ : state) {
    auto cut = partition_by_hash(g, static_cast<PartitionId>(state.range(0)));
    benchmark::DoNotOptimize(cut);
  }
}
BENCHMARK(BM_EdgeCutHash)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace g10::graph

BENCHMARK_MAIN();
