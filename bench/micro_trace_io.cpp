// Trace-ingestion micro-benchmarks: text parse vs `.g10t` binary ingest
// (cold and warm block cache), index-seek filtered reads vs full scans, and
// the forced-eviction regime under a tiny cache budget. The acceptance
// numbers for the binary format live here: a warm binary re-read must beat
// re-parsing the text log by >= 5x, and the cache's resident bytes must stay
// bounded by its budget (reported as counters). Results are bit-identical
// across every path — trace_reader_test and trace_format_pipeline_test pin
// that; this file only measures the time.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "algorithms/programs.hpp"
#include "engine/pregel/pregel_engine.hpp"
#include "graph/generators.hpp"
#include "monitor/sampler.hpp"
#include "trace/g10t_io.hpp"
#include "trace/log_io.hpp"
#include "trace/trace_reader.hpp"

namespace g10::trace {
namespace {

struct Workload {
  std::string text_path;
  std::string binary_path;
  std::size_t records = 0;
  TimeNs makespan = 0;
};

/// One engine run serialized to both formats in a temp directory.
const Workload& workload() {
  static const Workload w = [] {
    graph::DatagenParams params;
    params.vertices = 4096;
    params.mean_degree = 10;
    params.seed = 33;
    const graph::Graph graph = generate_datagen_like(params);

    engine::PregelConfig cfg;
    cfg.cluster.machine_count = 4;
    cfg.cluster.machine.cores = 4;
    cfg.gc.young_gen_bytes = 4e5;
    cfg.queue.capacity_bytes = 5e4;
    const engine::PregelEngine engine(cfg);
    const RunArtifacts artifacts = engine.run(graph, algorithms::Cdlp(6));
    const auto samples = monitor::sample_ground_truth(
        artifacts.ground_truth, 5 * kMillisecond, artifacts.makespan);

    const auto root = std::filesystem::temp_directory_path() /
                      ("g10_micro_trace_io_" + std::to_string(::getpid()));
    std::filesystem::create_directories(root);

    Workload out;
    out.text_path = (root / "run.log").string();
    out.binary_path = (root / "run.g10t").string();
    out.records = artifacts.phase_events.size() +
                  artifacts.blocking_events.size() + samples.size();
    out.makespan = artifacts.makespan;
    {
      std::ofstream log(out.text_path);
      write_log(log, artifacts.phase_events, artifacts.blocking_events,
                samples);
    }
    ParsedLog log;
    log.phase_events = artifacts.phase_events;
    log.blocking_events = artifacts.blocking_events;
    log.samples = samples;
    // Small blocks so the seek and eviction benchmarks operate on dozens
    // of blocks instead of a handful of huge ones.
    G10tWriteOptions g10t;
    g10t.block_records = 256;
    std::string error;
    write_g10t_file(out.binary_path, log, g10t, &error);
    return out;
  }();
  return w;
}

void set_throughput(benchmark::State& state) {
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload().records));
}

/// Re-parsing the text log every time — what every analysis paid before
/// the binary format existed.
void BM_TextParse(benchmark::State& state) {
  const Workload& w = workload();
  TraceReadOptions options;
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ParseResult result = read_trace_file(w.text_path, options);
    benchmark::DoNotOptimize(result);
  }
  set_throughput(state);
}

/// Cold binary ingest: a fresh reader per iteration, so every block is
/// decoded from the mapped file (the convert-then-analyze-once cost).
void BM_BinaryColdIngest(benchmark::State& state) {
  const Workload& w = workload();
  TraceReadOptions options;
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ParseResult result = read_trace_file(w.binary_path, options);
    benchmark::DoNotOptimize(result);
  }
  set_throughput(state);
}

/// Warm binary ingest: one reader, repeated reads — every block comes out
/// of the LRU cache. This is the repeated-analysis loop (det-check sweeps,
/// filter exploration) and must be >= 5x faster than BM_TextParse.
void BM_BinaryWarmIngest(benchmark::State& state) {
  const Workload& w = workload();
  TraceReadOptions options;
  options.threads = static_cast<int>(state.range(0));
  TraceReader::OpenResult opened = TraceReader::open(w.binary_path, options);
  ParseResult first = opened.reader->read();  // populate the cache
  benchmark::DoNotOptimize(first);
  for (auto _ : state) {
    ParseResult result = opened.reader->read();
    benchmark::DoNotOptimize(result);
  }
  set_throughput(state);
  const TraceReadStats stats = opened.reader->stats();
  state.counters["cache_hit_blocks"] =
      static_cast<double>(stats.cache.hits);
  state.counters["decoded_blocks"] =
      static_cast<double>(stats.blocks_decoded);
}

/// Index-seek: a narrow time window admits only a few blocks; the rest are
/// rejected from the index without touching their payloads.
void BM_BinaryFilteredSeek(benchmark::State& state) {
  const Workload& w = workload();
  TraceFilter filter;
  filter.time_min = 0;
  filter.time_max = w.makespan / 64;
  for (auto _ : state) {
    ParseResult result = read_trace_file(w.binary_path, {}, filter);
    benchmark::DoNotOptimize(result);
  }
  TraceReader::OpenResult opened = TraceReader::open(w.binary_path, {});
  ParseResult probe = opened.reader->read(filter);
  benchmark::DoNotOptimize(probe);
  const TraceReadStats stats = opened.reader->stats();
  state.counters["blocks_total"] = static_cast<double>(stats.blocks_total);
  state.counters["blocks_skipped"] =
      static_cast<double>(stats.blocks_skipped);
}

/// The same filtered query against the text log parses everything and
/// discards most of it — the full-scan baseline BM_BinaryFilteredSeek beats.
void BM_TextFilteredScan(benchmark::State& state) {
  const Workload& w = workload();
  TraceFilter filter;
  filter.time_min = 0;
  filter.time_max = w.makespan / 64;
  for (auto _ : state) {
    ParseResult result = read_trace_file(w.text_path, {}, filter);
    benchmark::DoNotOptimize(result);
  }
}

/// Forced eviction: a budget far below the decoded size. Time sits between
/// cold and warm; the resident-bytes counter documents that memory stays
/// bounded by the budget (the RSS claim in BENCH_trace_io.json).
void BM_BinaryTinyCacheBudget(benchmark::State& state) {
  const Workload& w = workload();
  TraceReadOptions options;
  options.cache_budget_bytes = static_cast<std::size_t>(state.range(0));
  TraceReader::OpenResult opened = TraceReader::open(w.binary_path, options);
  for (auto _ : state) {
    ParseResult result = opened.reader->read();
    benchmark::DoNotOptimize(result);
  }
  set_throughput(state);
  const TraceReadStats stats = opened.reader->stats();
  state.counters["cache_budget_bytes"] =
      static_cast<double>(options.cache_budget_bytes);
  state.counters["cache_resident_bytes"] =
      static_cast<double>(stats.cache.resident_bytes);
  state.counters["cache_evictions"] =
      static_cast<double>(stats.cache.evictions);
}

BENCHMARK(BM_TextParse)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BinaryColdIngest)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BinaryWarmIngest)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BinaryFilteredSeek)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TextFilteredScan)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BinaryTinyCacheBudget)
    ->Arg(64 << 10)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace g10::trace

BENCHMARK_MAIN();
