// Micro-benchmarks of the Grade10 analysis pipeline itself: demand
// estimation, upsampling, and per-slice attribution throughput as the trace
// grows. These bound the overhead Grade10 adds on top of a monitored run
// (requirement R4 is about the *monitoring* cost; this shows the offline
// analysis is cheap too).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "grade10/attribution/attributor.hpp"
#include "grade10/attribution/demand.hpp"
#include "grade10/trace/execution_trace.hpp"
#include "grade10/trace/resource_trace.hpp"

namespace g10::core {
namespace {

struct Fixture {
  ExecutionModel execution;
  ResourceModel resources;
  AttributionRuleSet rules;
  std::vector<trace::PhaseEventRecord> events;
  std::vector<trace::MonitoringSampleRecord> samples;

  /// steps sequential steps, each with `threads` concurrent leaves of 100ns.
  explicit Fixture(int steps, int threads) {
    const PhaseTypeId job = execution.add_root("Job");
    const PhaseTypeId step = execution.add_child(job, "Step", true);
    const PhaseTypeId work = execution.add_child(step, "Work");
    const ResourceId cpu = resources.add_consumable("cpu", 8.0);
    rules.set(work, cpu, AttributionRule::exact(1.0));

    Rng rng(7);
    const TimeNs step_len = 100;
    events.push_back({trace::PhaseEventRecord::Kind::Begin,
                      *trace::parse_phase_path("Job.0"), 0, -1});
    for (int s = 0; s < steps; ++s) {
      const TimeNs begin = s * step_len;
      const std::string prefix = "Job.0/Step." + std::to_string(s);
      events.push_back({trace::PhaseEventRecord::Kind::Begin,
                        *trace::parse_phase_path(prefix), begin, -1});
      for (int t = 0; t < threads; ++t) {
        const std::string path = prefix + "/Work." + std::to_string(t);
        const TimeNs end = begin + rng.next_int(50, 100);
        events.push_back({trace::PhaseEventRecord::Kind::Begin,
                          *trace::parse_phase_path(path), begin, 0});
        events.push_back({trace::PhaseEventRecord::Kind::End,
                          *trace::parse_phase_path(path), end, 0});
      }
      events.push_back({trace::PhaseEventRecord::Kind::End,
                        *trace::parse_phase_path(prefix), begin + step_len,
                        -1});
    }
    events.push_back({trace::PhaseEventRecord::Kind::End,
                      *trace::parse_phase_path("Job.0"), steps * step_len,
                      -1});
    // Monitoring at 4-slice quanta (slice = 10ns).
    for (TimeNs t = 40; t <= steps * step_len; t += 40) {
      samples.push_back({"cpu", 0, t, rng.next_double(0.0, 8.0)});
    }
  }
};

void BM_DemandEstimation(benchmark::State& state) {
  const Fixture fixture(static_cast<int>(state.range(0)), 8);
  const auto trace = ExecutionTrace::build(fixture.execution,
                                           fixture.resources, fixture.events,
                                           {});
  const TimesliceGrid grid(10);
  for (auto _ : state) {
    auto demand =
        estimate_demand(fixture.resources, fixture.rules, trace, grid);
    benchmark::DoNotOptimize(demand);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_DemandEstimation)->Arg(64)->Arg(256)->Arg(1024);

void BM_Upsample(benchmark::State& state) {
  const Fixture fixture(static_cast<int>(state.range(0)), 8);
  const auto trace = ExecutionTrace::build(fixture.execution,
                                           fixture.resources, fixture.events,
                                           {});
  const TimesliceGrid grid(10);
  const auto demand =
      estimate_demand(fixture.resources, fixture.rules, trace, grid);
  const auto monitored =
      ResourceTrace::build(fixture.resources, fixture.samples);
  for (auto _ : state) {
    auto up = upsample(demand[0], monitored.series()[0], grid);
    benchmark::DoNotOptimize(up);
  }
  state.SetItemsProcessed(state.iterations() * demand[0].slice_count);
}
BENCHMARK(BM_Upsample)->Arg(64)->Arg(256)->Arg(1024);

void BM_FullAttribution(benchmark::State& state) {
  const Fixture fixture(static_cast<int>(state.range(0)), 8);
  const auto trace = ExecutionTrace::build(fixture.execution,
                                           fixture.resources, fixture.events,
                                           {});
  const TimesliceGrid grid(10);
  const auto demand =
      estimate_demand(fixture.resources, fixture.rules, trace, grid);
  const auto monitored =
      ResourceTrace::build(fixture.resources, fixture.samples);
  for (auto _ : state) {
    auto usage = attribute_usage(demand, monitored, grid);
    benchmark::DoNotOptimize(usage);
  }
  state.SetItemsProcessed(state.iterations() * demand[0].slice_count);
}
BENCHMARK(BM_FullAttribution)->Arg(64)->Arg(256)->Arg(1024);

void BM_TraceBuild(benchmark::State& state) {
  const Fixture fixture(static_cast<int>(state.range(0)), 8);
  for (auto _ : state) {
    auto trace = ExecutionTrace::build(fixture.execution, fixture.resources,
                                       fixture.events, {});
    benchmark::DoNotOptimize(trace);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fixture.events.size()));
}
BENCHMARK(BM_TraceBuild)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace g10::core

BENCHMARK_MAIN();
