// Thread-scaling micro-benchmarks of the two parallelized paths: the full
// characterization pipeline (demand -> attribution -> bottlenecks -> issues)
// and chunked log ingestion. Each benchmark runs at 1/2/4/8 threads via the
// config/ParseOptions knob, so the speedup curve — and the serial baseline —
// is read off one report. Results are bit-identical across the thread axis
// (enforced by pipeline_determinism_test); only the time should move.
#include <benchmark/benchmark.h>

#include <sstream>

#include "algorithms/programs.hpp"
#include "engine/pregel/pregel_engine.hpp"
#include "grade10/models/pregel_model.hpp"
#include "grade10/pipeline.hpp"
#include "graph/generators.hpp"
#include "monitor/sampler.hpp"
#include "trace/log_io.hpp"

namespace g10::core {
namespace {

struct Workload {
  trace::RunArtifacts artifacts;
  std::vector<trace::MonitoringSampleRecord> samples;
  FrameworkModel model;
  std::string log_text;  ///< serialized run, for the ingestion benchmarks
};

const Workload& workload() {
  static const Workload w = [] {
    graph::DatagenParams params;
    params.vertices = 4096;
    params.mean_degree = 10;
    params.seed = 33;
    const graph::Graph graph = generate_datagen_like(params);

    engine::PregelConfig cfg;
    cfg.cluster.machine_count = 4;
    cfg.cluster.machine.cores = 4;
    cfg.gc.young_gen_bytes = 4e5;
    cfg.queue.capacity_bytes = 5e4;
    const engine::PregelEngine engine(cfg);

    Workload out;
    out.artifacts = engine.run(graph, algorithms::Cdlp(6));
    out.samples = monitor::sample_ground_truth(out.artifacts.ground_truth,
                                               20 * kMillisecond,
                                               out.artifacts.makespan);
    PregelModelParams model_params;
    model_params.cores = cfg.cluster.machine.cores;
    model_params.threads = cfg.effective_threads();
    model_params.network_capacity = cfg.cluster.machine.nic_bytes_per_sec();
    out.model = make_pregel_model(model_params);

    std::ostringstream os;
    trace::write_log(os, out.artifacts.phase_events,
                     out.artifacts.blocking_events, out.samples);
    out.log_text = os.str();
    return out;
  }();
  return w;
}

void BM_Characterize(benchmark::State& state) {
  const Workload& w = workload();
  CharacterizationInput input;
  input.model = &w.model.execution;
  input.resources = &w.model.resources;
  input.rules = &w.model.tuned_rules;
  input.phase_events = w.artifacts.phase_events;
  input.blocking_events = w.artifacts.blocking_events;
  input.samples = w.samples;
  input.config.timeslice = 10 * kMillisecond;
  input.config.min_issue_impact = 0.0;
  input.config.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = characterize(input);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(w.artifacts.phase_events.size()));
}
BENCHMARK(BM_Characterize)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ParseLog(benchmark::State& state) {
  const Workload& w = workload();
  trace::ParseOptions options;
  options.recover = true;
  options.threads = static_cast<int>(state.range(0));
  options.min_chunk_bytes = 1 << 16;  // the bench log is a few MB
  for (auto _ : state) {
    auto result = trace::parse_log_text(w.log_text, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(w.log_text.size()));
}
BENCHMARK(BM_ParseLog)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_WriteLog(benchmark::State& state) {
  // The serial writer, exercised because ingestion benchmarks depend on its
  // output format; to_chars formatting shows up here.
  const Workload& w = workload();
  for (auto _ : state) {
    std::ostringstream os;
    trace::write_log(os, w.artifacts.phase_events,
                     w.artifacts.blocking_events, w.samples);
    benchmark::DoNotOptimize(os);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(w.log_text.size()));
}
BENCHMARK(BM_WriteLog)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace g10::core

BENCHMARK_MAIN();
