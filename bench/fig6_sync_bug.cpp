// Figure 6 (paper §IV-D): discovery of the PowerGraph synchronization bug.
//
// Runs CDLP on the GAS engine with the §IV-D bug reproduction enabled and,
// like the paper, (1) prints the per-thread durations of every worker in
// the first Gather step — showing both the inter-worker spread caused by
// the hash-source vertex-cut and the intra-worker outlier thread caused by
// the bug — and (2) scans every gather step for outlier threads, reporting
// what fraction of non-trivial steps is affected and the induced slowdown.
//
// Paper shape targets: median thread durations differ strongly across
// workers (6.4-20.5 s there); one thread can take ~2.9x its worker's mean;
// outliers affect ~20% of non-trivial steps with slowdowns of 1.10-2.50x.
#include <algorithm>
#include <iostream>
#include <map>

#include "algorithms/programs.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "engine/gas/gas_engine.hpp"
#include "grade10/trace/execution_trace.hpp"
#include "support/experiment.hpp"
#include "support/workloads.hpp"

namespace g10::bench {
namespace {

/// Thread durations of one (iteration, worker) gather phase.
struct GatherGroup {
  int iteration = 0;
  int worker = 0;
  std::vector<double> thread_seconds;
};

std::vector<GatherGroup> collect_gather_groups(
    const core::ExecutionTrace& trace, const core::ExecutionModel& model) {
  const core::PhaseTypeId thread_type = model.find("GatherThread");
  std::map<std::pair<int, int>, GatherGroup> groups;
  for (const auto& instance : trace.instances()) {
    if (instance.type != thread_type) continue;
    // Path: Job.0/Execute.0/Iteration.i/GatherStep.0/WorkerGather.w/...
    const auto path = *trace::parse_phase_path(instance.path);
    const int iteration = static_cast<int>(path.elements[2].index);
    const int worker = static_cast<int>(path.elements[4].index);
    auto& group = groups[{iteration, worker}];
    group.iteration = iteration;
    group.worker = worker;
    group.thread_seconds.push_back(to_seconds(instance.duration()));
  }
  std::vector<GatherGroup> out;
  for (auto& [key, group] : groups) out.push_back(std::move(group));
  return out;
}

int run() {
  std::cout << "Figure 6: per-thread durations in CDLP Gather steps "
               "(PowerGraph-sim with the sync bug)\n\n";
  const Dataset dataset = make_datagen_dataset(65536, 16.0);
  const algorithms::Cdlp cdlp(10);

  auto cfg = default_gas_config();
  // Slow cores bring per-step durations to the multi-second scale of the
  // paper's testbed (absolute numbers are calibration, not reproduction
  // targets — see DESIGN.md).
  cfg.cluster.machine.core_work_per_sec = 2.0e5;
  cfg.sync_bug.enabled = true;
  cfg.sync_bug.probability = 0.12;  // ~20% of steps hit on 4 workers
  cfg.seed = 77;

  // The paper scans many jobs (the bug is sporadic); we run 8 and pool the
  // gather steps, printing the first job's first step in detail.
  const auto model = gas_framework_model(cfg);
  std::vector<GatherGroup> groups;           // first job only (Fig. 6 proper)
  std::vector<GatherGroup> pooled;           // all jobs, for the outlier scan
  for (int job = 0; job < 8; ++job) {
    auto job_cfg = cfg;
    job_cfg.seed = cfg.seed + static_cast<std::uint64_t>(job);
    const engine::GasEngine engine(job_cfg);
    const auto artifacts = engine.run(dataset.graph, cdlp);
    const auto trace = core::ExecutionTrace::build(
        model.execution, model.resources, artifacts.phase_events,
        artifacts.blocking_events);
    auto job_groups = collect_gather_groups(trace, model.execution);
    for (auto& group : job_groups) {
      group.iteration += job * 1000;  // keep steps from different jobs apart
      pooled.push_back(group);
      if (job == 0) {
        group.iteration -= job * 1000;
        groups.push_back(std::move(group));
      }
    }
  }

  // --- (1) first iteration: per-worker thread durations -------------------
  std::cout << "First Gather step (iteration 0):\n";
  TextTable table({"worker", "threads [s]", "median [s]", "max [s]",
                   "max/mean"});
  CsvWriter csv(results_dir() + "/fig6_first_gather_threads.csv");
  csv.write_row(
      std::vector<std::string>{"worker", "thread", "duration_s"});
  double worst_ratio = 0.0;
  double min_median = 1e18;
  double max_median = 0.0;
  for (const auto& group : groups) {
    if (group.iteration != 0) continue;
    RunningStats stats;
    std::string list;
    for (std::size_t t = 0; t < group.thread_seconds.size(); ++t) {
      stats.add(group.thread_seconds[t]);
      if (!list.empty()) list += " ";
      list += format_fixed(group.thread_seconds[t], 2);
      csv.write_row(std::vector<double>{static_cast<double>(group.worker),
                                        static_cast<double>(t),
                                        group.thread_seconds[t]});
    }
    const double med = median(group.thread_seconds);
    min_median = std::min(min_median, med);
    max_median = std::max(max_median, med);
    const double ratio = stats.mean() > 0 ? stats.max() / stats.mean() : 0.0;
    worst_ratio = std::max(worst_ratio, ratio);
    table.add_row({std::to_string(group.worker), list, format_fixed(med, 2),
                   format_fixed(stats.max(), 2), format_fixed(ratio, 2)});
  }
  table.render(std::cout);
  std::cout << "\nInter-worker median spread: " << format_fixed(min_median, 2)
            << " - " << format_fixed(max_median, 2)
            << " s (paper: 6.4 - 20.5 s)\n";
  std::cout << "Worst outlier thread vs worker mean: "
            << format_fixed(worst_ratio, 2) << "x (paper: 2.88x)\n";

  // --- (2) outlier scan over the gather steps of all 8 jobs ----------------
  std::map<int, std::vector<const GatherGroup*>> by_iteration;
  for (const auto& group : pooled) {
    by_iteration[group.iteration].push_back(&group);
  }
  int non_trivial = 0;
  int affected = 0;
  double min_slowdown = 1e18;
  double max_slowdown = 0.0;
  const double trivial_threshold = 0.5;  // seconds; paper uses 1 s
  for (const auto& [iteration, workers] : by_iteration) {
    double actual = 0.0;
    double without_outliers = 0.0;
    bool has_outlier = false;
    for (const GatherGroup* group : workers) {
      const double med = median(group->thread_seconds);
      double worker_actual = 0.0;
      double worker_clean = 0.0;
      for (const double d : group->thread_seconds) {
        worker_actual = std::max(worker_actual, d);
        if (med > 0 && d > 1.5 * med) {
          has_outlier = true;
          worker_clean = std::max(worker_clean, med);
        } else {
          worker_clean = std::max(worker_clean, d);
        }
      }
      actual = std::max(actual, worker_actual);
      without_outliers = std::max(without_outliers, worker_clean);
    }
    if (actual < trivial_threshold) continue;
    ++non_trivial;
    if (has_outlier && without_outliers > 0.0) {
      const double slowdown = actual / without_outliers;
      if (slowdown > 1.02) {
        ++affected;
        min_slowdown = std::min(min_slowdown, slowdown);
        max_slowdown = std::max(max_slowdown, slowdown);
      }
    }
  }
  std::cout << "\nOutlier scan over all Gather steps:\n";
  std::cout << "  non-trivial steps (> " << trivial_threshold
            << " s): " << non_trivial << "\n";
  std::cout << "  steps slowed by an outlier thread: " << affected << " ("
            << format_percent(non_trivial > 0
                                  ? static_cast<double>(affected) /
                                        non_trivial
                                  : 0.0)
            << "; paper: ~20%)\n";
  if (affected > 0) {
    std::cout << "  slowdown range: " << format_fixed(min_slowdown, 2)
              << "x - " << format_fixed(max_slowdown, 2)
              << "x (paper: 1.10x - 2.50x)\n";
  }
  return 0;
}

}  // namespace
}  // namespace g10::bench

int main() { return g10::bench::run(); }
