// Micro-benchmarks of the simulated engines themselves: how fast the
// discrete-event substrate executes workloads (simulated edges processed
// per wall-clock second), which bounds how large an experiment the
// reproduction can drive.
#include <benchmark/benchmark.h>

#include "algorithms/programs.hpp"
#include "engine/gas/gas_engine.hpp"
#include "engine/pregel/pregel_engine.hpp"
#include "graph/generators.hpp"

namespace g10::engine {
namespace {

graph::Graph bench_graph(int scale) {
  graph::RmatParams params;
  params.scale = scale;
  params.edge_factor = 16;
  params.seed = 4;
  return generate_rmat(params);
}

void BM_PregelPageRank(benchmark::State& state) {
  const auto graph = bench_graph(static_cast<int>(state.range(0)));
  PregelConfig cfg;
  cfg.cluster.machine_count = 4;
  cfg.cluster.machine.cores = 8;
  const PregelEngine engine(cfg);
  const algorithms::PageRank pagerank(5);
  for (auto _ : state) {
    auto result = engine.run(graph, pagerank);
    benchmark::DoNotOptimize(result);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(graph.edge_count()) * 5);
  }
  state.counters["edges"] = static_cast<double>(graph.edge_count());
}
BENCHMARK(BM_PregelPageRank)->Arg(12)->Arg(14);

void BM_GasPageRank(benchmark::State& state) {
  const auto graph = bench_graph(static_cast<int>(state.range(0)));
  GasConfig cfg;
  cfg.cluster.machine_count = 4;
  cfg.cluster.machine.cores = 8;
  const GasEngine engine(cfg);
  const algorithms::PageRank pagerank(5);
  for (auto _ : state) {
    auto result = engine.run(graph, pagerank);
    benchmark::DoNotOptimize(result);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(graph.edge_count()) * 5);
  }
}
BENCHMARK(BM_GasPageRank)->Arg(12)->Arg(14);

void BM_PregelCdlp(benchmark::State& state) {
  // CDLP has no combiner: per-vertex message lists are the stress case.
  const auto graph = bench_graph(12);
  PregelConfig cfg;
  cfg.cluster.machine_count = 4;
  cfg.cluster.machine.cores = 8;
  const PregelEngine engine(cfg);
  const algorithms::Cdlp cdlp(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto result = engine.run(graph, cdlp);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PregelCdlp)->Arg(2)->Arg(8);

void BM_DeliveryPath(benchmark::State& state) {
  // Pregel message-delivery hot path: combiner=0 runs PageRank (kSum, the
  // combined-value fast lane), combiner=1 runs CDLP (kNone, the message
  // arena); batch=0 disables communication coalescing, batch=1 is the
  // default batched schedule. The 0-vs-1 batch pairs are the before/after
  // table in bench/results/BENCH_engines.json.
  const auto graph = bench_graph(12);
  PregelConfig cfg;
  cfg.cluster.machine_count = 4;
  cfg.cluster.machine.cores = 8;
  if (state.range(1) == 0) cfg.batch.max_batch_bytes = 0.0;
  const PregelEngine engine(cfg);
  const algorithms::PageRank pagerank(3);
  const algorithms::Cdlp cdlp(3);
  for (auto _ : state) {
    auto result = state.range(0) == 0 ? engine.run(graph, pagerank)
                                      : engine.run(graph, cdlp);
    benchmark::DoNotOptimize(result);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(graph.edge_count()) * 3);
  }
}
BENCHMARK(BM_DeliveryPath)
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->ArgNames({"combiner", "batch"});

void BM_GasDeliveryPath(benchmark::State& state) {
  // GAS exchange path, batching off (0) vs on (1).
  const auto graph = bench_graph(12);
  GasConfig cfg;
  cfg.cluster.machine_count = 4;
  cfg.cluster.machine.cores = 8;
  if (state.range(0) == 0) cfg.batch.max_batch_bytes = 0.0;
  const GasEngine engine(cfg);
  const algorithms::PageRank pagerank(3);
  for (auto _ : state) {
    auto result = engine.run(graph, pagerank);
    benchmark::DoNotOptimize(result);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(graph.edge_count()) * 3);
  }
}
BENCHMARK(BM_GasDeliveryPath)->Arg(0)->Arg(1)->ArgName("batch");

void BM_GasSsspWeighted(benchmark::State& state) {
  auto graph = bench_graph(12);
  graph::assign_random_weights(graph, 1.0, 10.0, 7);
  GasConfig cfg;
  cfg.cluster.machine_count = 4;
  cfg.cluster.machine.cores = 8;
  const GasEngine engine(cfg);
  const algorithms::Sssp sssp(1);
  for (auto _ : state) {
    auto result = engine.run(graph, sssp);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_GasSsspWeighted);

}  // namespace
}  // namespace g10::engine

BENCHMARK_MAIN();
