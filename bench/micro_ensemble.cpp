// Throughput micro-benchmarks of the ensemble machinery, split by layer:
//   - BM_JournalAppend: fsync'd JSONL appends (the crash-safety cost).
//   - BM_SyntheticFleet/T: the driver's own overhead — expand, executor,
//     journal, re-read, aggregate — with a near-free run function, at
//     1/2/4/8 pool threads. items_per_second counts scenarios.
//   - BM_Grade10Fleet/T: the real engine+characterize runner on a small
//     graph, i.e. what `g10_ensemble` actually sustains per scenario.
// Results land in bench/results/BENCH_ensemble.json.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>

#include "ensemble/driver.hpp"
#include "ensemble/run_grade10.hpp"

namespace g10::ensemble {
namespace {

std::string fresh_journal_path() {
  static std::atomic<std::uint64_t> counter{0};
  const auto dir = std::filesystem::temp_directory_path() / "g10_bench_ens";
  std::filesystem::create_directories(dir);
  return (dir / ("journal_" + std::to_string(counter.fetch_add(1)) +
                 ".jsonl"))
      .string();
}

JournalEntry bench_entry() {
  JournalEntry entry;
  entry.key = 0x1234abcd5678ef01ull;
  entry.scenario =
      "engine=gas algo=pagerank dataset=rmat:12 workers=4 cores=8 iters=10 "
      "seed=42 sync_bug=1 jitter=1x1 faults=crash:w2@40%";
  entry.outcome = RunOutcome::kOk;
  entry.attempts = 1;
  entry.wall_ms = 57.25;
  entry.report.makespan_seconds = 0.0592;
  entry.report.phase_bottlenecks.push_back({"GatherStep", "network", 0.021});
  entry.report.phase_bottlenecks.push_back({"ApplyThread", "cpu", 0.017});
  entry.report.issues.push_back({"imbalance:GatherThread", 0.081});
  entry.report.sync_bug_rediscovered = true;
  return entry;
}

void BM_JournalAppend(benchmark::State& state) {
  const std::string path = fresh_journal_path();
  const JournalEntry entry = bench_entry();
  {
    JournalWriter writer(path);
    for (auto _ : state) writer.append(entry);
  }
  state.SetItemsProcessed(state.iterations());
  std::remove(path.c_str());
}
BENCHMARK(BM_JournalAppend)->UseRealTime()->Unit(benchmark::kMicrosecond);

void BM_SyntheticFleet(benchmark::State& state) {
  ScenarioMatrix matrix;
  matrix.engines = {"pregel", "gas"};
  matrix.seed_range(1, 128);
  matrix.fault_specs.emplace_back();
  matrix.fault_specs.push_back(*sim::FaultSpec::parse("crash:w1@40%"));
  const RunFn fn = [](const Scenario& scenario, const CancelToken&) {
    RunAttempt attempt;
    attempt.outcome = RunOutcome::kOk;
    attempt.report.makespan_seconds =
        1.0 + 0.001 * static_cast<double>(scenario.seed);
    attempt.report.sync_bug_rediscovered = scenario.seed % 2 == 0;
    return attempt;
  };
  const std::size_t scenario_count = matrix.expand().size();
  for (auto _ : state) {
    EnsembleOptions options;
    options.journal_path = fresh_journal_path();
    options.threads = static_cast<std::size_t>(state.range(0));
    const EnsembleOutcome outcome = run_ensemble(matrix, fn, options);
    benchmark::DoNotOptimize(outcome.report.coverage);
    std::remove(options.journal_path.c_str());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(scenario_count));
}
BENCHMARK(BM_SyntheticFleet)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_Grade10Fleet(benchmark::State& state) {
  ScenarioMatrix matrix;
  matrix.engines = {"gas"};
  matrix.dataset = "rmat:8";
  matrix.workers = 2;
  matrix.cores = 2;
  matrix.iterations = 5;
  matrix.sync_bug = true;
  matrix.seed_range(1, 16);
  const RunFn fn = make_grade10_runner();
  const std::size_t scenario_count = matrix.expand().size();
  for (auto _ : state) {
    EnsembleOptions options;
    options.journal_path = fresh_journal_path();
    options.threads = static_cast<std::size_t>(state.range(0));
    const EnsembleOutcome outcome = run_ensemble(matrix, fn, options);
    benchmark::DoNotOptimize(outcome.report.coverage);
    std::remove(options.journal_path.c_str());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(scenario_count));
}
BENCHMARK(BM_Grade10Fleet)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace g10::ensemble

BENCHMARK_MAIN();
