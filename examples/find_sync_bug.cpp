// Rediscover the §IV-D synchronization bug with Grade10's imbalance
// detector: run CDLP on the GAS (PowerGraph-like) engine with the bug
// reproduction enabled, let Grade10 rank the imbalance issues, then drill
// into the flagged Gather phases to see the outlier threads the paper
// describes ("all threads but one reach the barrier...").
#include <algorithm>
#include <iostream>
#include <map>

#include "algorithms/programs.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "engine/gas/gas_engine.hpp"
#include "grade10/models/gas_model.hpp"
#include "grade10/pipeline.hpp"
#include "grade10/report/report.hpp"
#include "graph/generators.hpp"
#include "monitor/sampler.hpp"

using namespace g10;

int main() {
  engine::GasConfig cfg;
  cfg.cluster.machine_count = 4;
  cfg.cluster.machine.cores = 8;
  cfg.cluster.machine.core_work_per_sec = 4.0e7;
  cfg.threads_per_worker = 7;
  cfg.partitioning = engine::VertexCutStrategy::kRangeSource;
  cfg.sync_bug.enabled = true;       // the buggy build
  cfg.sync_bug.probability = 0.25;   // make the sporadic bug easy to catch

  graph::DatagenParams datagen;
  datagen.vertices = 1 << 16;
  datagen.mean_degree = 16;
  const graph::Graph graph = generate_datagen_like(datagen);
  const algorithms::Cdlp cdlp(12);

  std::cout << "Running CDLP(12) on the GAS engine (sync bug present)...\n";
  const engine::GasEngine engine(cfg);
  const trace::RunArtifacts artifacts = engine.run(graph, cdlp);
  const auto samples = monitor::sample_ground_truth(
      artifacts.ground_truth, 160 * kMillisecond, artifacts.makespan);

  core::GasModelParams params;
  params.cores = cfg.cluster.machine.cores;
  params.threads = cfg.effective_threads();
  params.network_capacity = cfg.cluster.machine.nic_bytes_per_sec();
  const core::FrameworkModel model = core::make_gas_model(params);

  core::CharacterizationInput input;
  input.model = &model.execution;
  input.resources = &model.resources;
  input.rules = &model.tuned_rules;
  input.phase_events = artifacts.phase_events;
  input.blocking_events = artifacts.blocking_events;
  input.samples = samples;
  input.config.timeslice = 20 * kMillisecond;
  input.config.min_issue_impact = 0.0;
  const core::CharacterizationResult result = core::characterize(input);

  // Step 1: Grade10's automated ranking points at Gather imbalance.
  core::render_issues(std::cout, result.issues);

  // Step 2: drill into the worst gather step like the paper's Fig. 6.
  const core::PhaseTypeId thread_type =
      model.execution.find("GatherThread");
  std::map<std::string, std::vector<double>> durations_by_worker_phase;
  for (const auto& instance : result.trace.instances()) {
    if (instance.type != thread_type) continue;
    const core::PhaseInstance& parent =
        result.trace.instance(instance.parent);
    durations_by_worker_phase[parent.path].push_back(
        to_seconds(instance.duration()));
  }
  std::string worst_phase;
  double worst_ratio = 0.0;
  for (const auto& [phase, durations] : durations_by_worker_phase) {
    RunningStats stats;
    for (const double d : durations) stats.add(d);
    if (stats.mean() <= 0) continue;
    const double ratio = stats.max() / stats.mean();
    if (ratio > worst_ratio) {
      worst_ratio = ratio;
      worst_phase = phase;
    }
  }
  std::cout << "\nWorst outlier: " << worst_phase << " — slowest thread "
            << format_fixed(worst_ratio, 2)
            << "x its worker's mean (the paper's smoking gun was 2.88x).\n";
  std::cout << "Thread durations [s]:";
  for (const double d : durations_by_worker_phase[worst_phase]) {
    std::cout << ' ' << format_fixed(d, 3);
  }
  std::cout << "\n\nDiagnosis (paper §IV-D): one thread found late-arriving "
               "messages at the\ncross-thread barrier and kept draining them "
               "while its siblings sat idle.\n";
  return 0;
}
