// Paper §V: "extending to other domains" — the same Grade10 pipeline
// characterizes a Spark-like stage/task dataflow job. One stage carries
// heavy straggler skew; Grade10's imbalance detector singles it out.
#include <iostream>

#include "engine/dataflow/dataflow_engine.hpp"
#include "grade10/models/dataflow_model.hpp"
#include "grade10/pipeline.hpp"
#include "grade10/report/report.hpp"
#include "monitor/sampler.hpp"

using namespace g10;

int main() {
  engine::DataflowConfig cfg;
  cfg.cluster.machine_count = 4;
  cfg.cluster.machine.cores = 8;
  cfg.cluster.machine.core_work_per_sec = 4.0e7;

  engine::DataflowJobSpec job;
  job.stages.push_back({/*tasks=*/128, /*work=*/4e6, /*skew=*/0.1,
                        /*shuffle=*/2e6});
  job.stages.push_back({/*tasks=*/64, /*work=*/8e6, /*skew=*/2.0,
                        /*shuffle=*/4e6});  // the straggler stage
  job.stages.push_back({/*tasks=*/128, /*work=*/3e6, /*skew=*/0.1,
                        /*shuffle=*/1e6});
  job.stages.push_back({/*tasks=*/16, /*work=*/6e6, /*skew=*/0.2,
                        /*shuffle=*/0.0});

  std::cout << "Running a 4-stage dataflow job (stage 1 has heavy "
               "straggler skew)...\n";
  const engine::DataflowEngine engine(cfg);
  const trace::RunArtifacts artifacts = engine.run(job);
  std::cout << "makespan: " << to_seconds(artifacts.makespan) << " s\n\n";

  const auto samples = monitor::sample_ground_truth(
      artifacts.ground_truth, 160 * kMillisecond, artifacts.makespan);

  core::DataflowModelParams params;
  params.cores = cfg.cluster.machine.cores;
  params.machines = cfg.cluster.machine_count;
  params.slots = cfg.effective_slots();
  params.network_capacity = cfg.cluster.machine.nic_bytes_per_sec();
  const core::FrameworkModel model = core::make_dataflow_model(params);

  core::CharacterizationInput input;
  input.model = &model.execution;
  input.resources = &model.resources;
  input.rules = &model.tuned_rules;
  input.phase_events = artifacts.phase_events;
  input.blocking_events = artifacts.blocking_events;
  input.samples = samples;
  input.config.timeslice = 20 * kMillisecond;
  input.config.min_issue_impact = 0.02;
  const core::CharacterizationResult result = core::characterize(input);

  core::render_profile(std::cout, result.trace, model.resources, result.usage,
                       result.grid);
  std::cout << '\n';
  core::render_issues(std::cout, result.issues);
  std::cout << "\nThe 'Task' imbalance issue captures the straggler stage: "
               "the same\nGrade10 pipeline, an entirely different system "
               "(paper §V).\n";
  return 0;
}
