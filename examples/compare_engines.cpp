// Run the same workload on both bundled engines and compare Grade10's
// verdicts side by side — the paper's headline use case: "large differences
// in the nature and severity of bottlenecks across systems".
#include <iostream>
#include <map>

#include "algorithms/programs.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "engine/gas/gas_engine.hpp"
#include "engine/pregel/pregel_engine.hpp"
#include "grade10/models/gas_model.hpp"
#include "grade10/models/pregel_model.hpp"
#include "grade10/pipeline.hpp"
#include "graph/generators.hpp"
#include "monitor/sampler.hpp"

using namespace g10;

namespace {

struct Summary {
  double makespan_s = 0.0;
  std::map<std::string, double> issue_impacts;  ///< description -> impact
};

Summary summarize(const trace::RunArtifacts& artifacts,
                  const core::FrameworkModel& model) {
  const auto samples = monitor::sample_ground_truth(
      artifacts.ground_truth, 160 * kMillisecond, artifacts.makespan);
  core::CharacterizationInput input;
  input.model = &model.execution;
  input.resources = &model.resources;
  input.rules = &model.tuned_rules;
  input.phase_events = artifacts.phase_events;
  input.blocking_events = artifacts.blocking_events;
  input.samples = samples;
  input.config.timeslice = 20 * kMillisecond;
  input.config.min_issue_impact = 0.02;
  const core::CharacterizationResult result = core::characterize(input);

  Summary summary;
  summary.makespan_s = to_seconds(artifacts.makespan);
  for (const auto& issue : result.issues) {
    summary.issue_impacts[issue.description] = issue.impact;
  }
  return summary;
}

}  // namespace

int main() {
  graph::RmatParams rmat;
  rmat.scale = 16;
  const graph::Graph graph = generate_rmat(rmat);
  const algorithms::Cdlp cdlp(12);
  std::cout << "CDLP(12) on rmat-16 (" << graph.edge_count()
            << " edges), both engines\n\n";

  sim::ClusterSpec cluster;
  cluster.machine_count = 4;
  cluster.machine.cores = 8;
  cluster.machine.core_work_per_sec = 4.0e7;

  engine::PregelConfig pregel_cfg;
  pregel_cfg.cluster = cluster;
  pregel_cfg.threads_per_worker = 7;
  pregel_cfg.gc.young_gen_bytes = 24e6;
  pregel_cfg.costs.bytes_per_message = 128.0;
  pregel_cfg.queue.capacity_bytes = 2e6;
  const auto pregel_artifacts =
      engine::PregelEngine(pregel_cfg).run(graph, cdlp);
  core::PregelModelParams pregel_params;
  pregel_params.cores = cluster.machine.cores;
  pregel_params.threads = pregel_cfg.effective_threads();
  pregel_params.network_capacity = cluster.machine.nic_bytes_per_sec();
  const Summary giraph = summarize(
      pregel_artifacts, core::make_pregel_model(pregel_params));

  engine::GasConfig gas_cfg;
  gas_cfg.cluster = cluster;
  gas_cfg.threads_per_worker = 7;
  gas_cfg.partitioning = engine::VertexCutStrategy::kRangeSource;
  const auto gas_artifacts = engine::GasEngine(gas_cfg).run(graph, cdlp);
  core::GasModelParams gas_params;
  gas_params.cores = cluster.machine.cores;
  gas_params.threads = gas_cfg.effective_threads();
  gas_params.network_capacity = cluster.machine.nic_bytes_per_sec();
  const Summary powergraph =
      summarize(gas_artifacts, core::make_gas_model(gas_params));

  std::cout << "Giraph-like engine:     "
            << format_fixed(giraph.makespan_s, 2) << " s\n";
  std::cout << "PowerGraph-like engine: "
            << format_fixed(powergraph.makespan_s, 2) << " s\n\n";

  const auto print_issues = [](const char* name, const Summary& summary) {
    std::cout << name << " — top issues:\n";
    if (summary.issue_impacts.empty()) {
      std::cout << "  (none above 2%)\n";
      return;
    }
    for (const auto& [description, impact] : summary.issue_impacts) {
      std::cout << "  " << format_percent(impact) << "  " << description
                << '\n';
    }
  };
  print_issues("Giraph-like", giraph);
  std::cout << '\n';
  print_issues("PowerGraph-like", powergraph);

  std::cout << "\nNote the different *nature* of the issues: the managed-"
               "runtime engine\nis dominated by GC/queue blocking, the "
               "native one by gather imbalance.\n";
  return 0;
}
