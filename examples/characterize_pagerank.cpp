// Characterize a PageRank job on the bundled Pregel (Giraph-like) engine —
// the paper's canonical workflow: run the SUT, collect logs + monitoring,
// then build the fine-grained profile, find bottlenecks, and rank issues.
#include <iostream>

#include "algorithms/programs.hpp"
#include "engine/pregel/pregel_engine.hpp"
#include "grade10/models/pregel_model.hpp"
#include "grade10/pipeline.hpp"
#include "grade10/report/report.hpp"
#include "graph/generators.hpp"
#include "monitor/sampler.hpp"

using namespace g10;

int main() {
  // --- the system under test: 4 machines x 8 cores, 1 Gb/s ---------------
  engine::PregelConfig cfg;
  cfg.cluster.machine_count = 4;
  cfg.cluster.machine.cores = 8;
  cfg.cluster.machine.core_work_per_sec = 4.0e7;
  cfg.threads_per_worker = 7;
  cfg.gc.young_gen_bytes = 24e6;
  cfg.costs.bytes_per_message = 128.0;
  cfg.queue.capacity_bytes = 2e6;

  // --- the workload: PageRank on a scale-16 power-law graph --------------
  graph::RmatParams rmat;
  rmat.scale = 16;
  const graph::Graph graph = generate_rmat(rmat);
  const algorithms::PageRank pagerank(30);

  std::cout << "Running PageRank(30) on " << graph.vertex_count()
            << " vertices / " << graph.edge_count() << " edges...\n";
  const engine::PregelEngine engine(cfg);
  const trace::RunArtifacts artifacts = engine.run(graph, pagerank);
  std::cout << "simulated makespan: " << to_seconds(artifacts.makespan)
            << " s, " << artifacts.blocking_events.size()
            << " blocking events (GC + queue stalls)\n\n";

  // --- monitoring: sample the cluster at a coarse 400 ms interval ---------
  const auto samples = monitor::sample_ground_truth(
      artifacts.ground_truth, 400 * kMillisecond, artifacts.makespan);

  // --- Grade10: the expert model shipped for this engine ------------------
  core::PregelModelParams params;
  params.cores = cfg.cluster.machine.cores;
  params.threads = cfg.effective_threads();
  params.network_capacity = cfg.cluster.machine.nic_bytes_per_sec();
  const core::FrameworkModel model = core::make_pregel_model(params);

  core::CharacterizationInput input;
  input.model = &model.execution;
  input.resources = &model.resources;
  input.rules = &model.tuned_rules;
  input.phase_events = artifacts.phase_events;
  input.blocking_events = artifacts.blocking_events;
  input.samples = samples;
  input.config.timeslice = 50 * kMillisecond;  // upsample 8x
  const core::CharacterizationResult result = core::characterize(input);

  core::render_profile(std::cout, result.trace, model.resources, result.usage,
                       result.grid);
  std::cout << '\n';
  core::render_bottlenecks(std::cout, model.resources, result.bottlenecks);
  std::cout << '\n';
  core::render_issues(std::cout, result.issues);
  return 0;
}
