// Quickstart: the Grade10 pipeline on a tiny hand-written workload.
//
// This is the minimal end-to-end usage of the public API:
//   1. describe the framework with an ExecutionModel and a ResourceModel;
//   2. give attribution rules (or rely on the implicit Variable default);
//   3. feed phase events + monitoring samples from your system's logs;
//   4. characterize() and render the results.
//
// The workload here is two "worker" phases inside one job: worker 0 works
// for 100 ms, worker 1 for 40 ms, and the machine's CPU is monitored at a
// coarse 40 ms interval. Grade10 upsamples the CPU trace to 10 ms slices,
// attributes it to the workers, and reports the imbalance.
#include <iostream>

#include "grade10/pipeline.hpp"
#include "grade10/report/report.hpp"

using namespace g10;
using namespace g10::core;

int main() {
  // 1. Execution model: Job -> { Worker (two concurrent instances) }.
  ExecutionModel model;
  const PhaseTypeId job = model.add_root("Job");
  const PhaseTypeId worker = model.add_child(job, "Worker");

  // 2. Resource model: one 4-core CPU per machine.
  ResourceModel resources;
  const ResourceId cpu = resources.add_consumable("cpu", 4.0);

  // 3. Attribution rules: each worker phase uses exactly one core.
  AttributionRuleSet rules;
  rules.set(worker, cpu, AttributionRule::exact(1.0));

  // 4. A run's logs: phase begin/end events and monitoring samples.
  const auto path = [](const char* text) {
    return *trace::parse_phase_path(text);
  };
  std::vector<trace::PhaseEventRecord> events{
      {trace::PhaseEventRecord::Kind::Begin, path("Job.0"), 0, -1},
      {trace::PhaseEventRecord::Kind::Begin, path("Job.0/Worker.0"), 0, 0},
      {trace::PhaseEventRecord::Kind::Begin, path("Job.0/Worker.1"), 0, 0},
      {trace::PhaseEventRecord::Kind::End, path("Job.0/Worker.1"),
       40 * kMillisecond, 0},
      {trace::PhaseEventRecord::Kind::End, path("Job.0/Worker.0"),
       100 * kMillisecond, 0},
      {trace::PhaseEventRecord::Kind::End, path("Job.0"), 100 * kMillisecond,
       -1},
  };
  std::vector<trace::MonitoringSampleRecord> samples{
      {"cpu", 0, 40 * kMillisecond, 2.0},   // both workers busy
      {"cpu", 0, 80 * kMillisecond, 1.0},   // only worker 0 left
      {"cpu", 0, 100 * kMillisecond, 1.0},
  };

  // 5. Characterize.
  CharacterizationInput input;
  input.model = &model;
  input.resources = &resources;
  input.rules = &rules;
  input.phase_events = events;
  input.samples = samples;
  input.config.timeslice = 10 * kMillisecond;
  input.config.min_issue_impact = 0.0;
  const CharacterizationResult result = characterize(input);

  render_profile(std::cout, result.trace, resources, result.usage,
                 result.grid);
  std::cout << '\n';
  render_bottlenecks(std::cout, resources, result.bottlenecks);
  std::cout << '\n';
  render_issues(std::cout, result.issues);

  std::cout << "\nThe imbalance issue shows the job could finish in ~70 ms "
               "if the two workers split the work evenly.\n";
  return 0;
}
